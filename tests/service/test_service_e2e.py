"""End-to-end campaign service: HTTP API, worker death, restarts.

The acceptance bar for the service: a journaled grid survives one
SIGKILLed worker AND a full service restart, and the merged
``--report`` output stays byte-identical to what the batch CLI
produces — at any worker count.

Worker death is injected deterministically through the spec's
``chaos_kill_key``: the worker SIGKILLs itself immediately before
executing the named scenario (mid-shard), which exercises exactly the
death-detection → resubmit path without racing an external signal
against a fast grid.
"""

import asyncio
import json
import threading

import pytest

from repro.cli import main
from repro.experiments.campaign import build_grid, run_campaign
from repro.service import CampaignService, ServiceClient, ServiceError
from repro.service.httpapi import serve

GRID_ARGS = dict(families=["chain", "star"], sizes=[4], seeds=2)
SPEC = {"families": ["chain", "star"], "sizes": [4], "seeds": 2}


def _grid():
    return build_grid(**GRID_ARGS)


class _RunningService:
    """A CampaignService + HTTP API on an ephemeral port, driven from a
    background thread so tests stay synchronous."""

    def __init__(self, state_dir, **service_kwargs):
        service_kwargs.setdefault("workers", 2)
        # Liveness checks catch hard death; the stall reaper is off by
        # default so a slow CI box cannot kill a merely busy worker.
        service_kwargs.setdefault("stall_timeout_s", None)
        self.service = CampaignService(state_dir, **service_kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._drive, daemon=True)
        self.client = None

    def _drive(self):
        async def amain():
            loop = asyncio.get_running_loop()
            ready = loop.create_future()
            task = asyncio.ensure_future(
                serve(self.service, port=0, ready=ready)
            )
            _host, port = await ready
            self.url = f"http://127.0.0.1:{port}"
            self._ready.set()
            await task

        asyncio.run(amain())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(30), "service did not come up"
        self.client = ServiceClient(self.url)
        self.client.wait_healthy()
        return self

    def __exit__(self, *exc_info):
        try:
            self.client.shutdown()
        except (ServiceError, OSError):
            pass
        self._thread.join(30)
        assert not self._thread.is_alive(), "service did not stop"


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The uninterrupted batch run every service result must match."""
    tmp_path = tmp_path_factory.mktemp("baseline")
    summary = run_campaign(_grid(), workers=1)
    path = summary.write_json(tmp_path / "baseline.json")
    return path.read_bytes()


def _result_json_bytes(client, campaign_id):
    payload = client.result(campaign_id)
    return (
        json.dumps(payload["summary"], indent=2) + "\n"
    ).encode("utf-8"), payload


class TestHappyPath:
    def test_submit_wait_result_is_byte_identical(
        self, tmp_path, baseline
    ):
        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            assert accepted["total"] == len(_grid())
            assert accepted["units"] == 2
            status = running.client.wait(accepted["id"], timeout_s=120)
            assert status["state"] == "done"
            assert status["completed"] == status["total"] == len(_grid())
            assert status["retries"] == 0
            result, payload = _result_json_bytes(running.client, accepted["id"])
            assert payload["complete"]
            assert result == baseline

    def test_healthz_and_status_shape(self, tmp_path):
        with _RunningService(tmp_path / "state") as running:
            health = running.client.health()
            assert health["ok"]
            assert len(health["workers"]) == 2
            assert all(w["alive"] for w in health["workers"])
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            status = running.client.status(accepted["id"])
            assert {u["unit"] for u in status["units"]} == {0, 1}
            assert status["state"] in ("running", "done")
            running.client.wait(accepted["id"], timeout_s=120)

    def test_bad_spec_is_a_client_error(self, tmp_path):
        with _RunningService(tmp_path / "state") as running:
            with pytest.raises(ServiceError) as excinfo:
                running.client.submit({"familes": ["star"]})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                running.client.status("c9999")
            assert excinfo.value.status == 404


class TestWorkerDeath:
    def test_sigkilled_worker_mid_shard_is_resubmitted(
        self, tmp_path, baseline
    ):
        """A worker SIGKILLed mid-unit forfeits exactly that unit; the
        scheduler respawns the slot, resubmits the unit with the
        already-journaled scenarios in its skip set, and the merged
        report is byte-identical to the uninterrupted batch run."""
        victim = _grid()[3].key()  # unit 1, second scenario: mid-shard
        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(
                dict(SPEC, shard_size=2, chaos_kill_key=victim)
            )
            status = running.client.wait(accepted["id"], timeout_s=120)
            assert status["state"] == "done"
            assert status["retries"] >= 1
            respawned = [
                w for w in running.client.health()["workers"]
                if w["generation"] >= 2
            ]
            assert respawned, "no worker slot was ever respawned"
            result, _payload = _result_json_bytes(running.client, accepted["id"])
            assert result == baseline

    def test_retry_budget_exhaustion_fails_the_unit_not_the_grid(
        self, tmp_path
    ):
        """chaos_always re-kills on every attempt: the unit burns its
        retry budget and fails, while the untouched unit still
        completes and stays journaled (partial result, no hang)."""
        victim = _grid()[3].key()
        with _RunningService(tmp_path / "state", retry_limit=1) as running:
            accepted = running.client.submit(
                dict(SPEC, shard_size=2,
                     chaos_kill_key=victim, chaos_always=True)
            )
            status = running.client.wait(accepted["id"], timeout_s=120)
            assert status["state"] == "failed"
            by_unit = {u["unit"]: u for u in status["units"]}
            assert by_unit[0]["state"] == "done"
            assert by_unit[1]["state"] == "failed"
            payload = running.client.result(accepted["id"])
            assert not payload["complete"]
            # everything journaled before the failure is still served
            assert payload["scenarios"] >= 2


class TestRestartSurvival:
    def test_full_service_restart_resumes_and_matches_batch(
        self, tmp_path, baseline
    ):
        """Stop the whole service with a failed unit on disk; a fresh
        service over the same state dir folds the shard journals,
        re-runs only the missing scenarios, and converges to the
        batch-identical artifact."""
        victim = _grid()[3].key()
        state_dir = tmp_path / "state"
        with _RunningService(state_dir, retry_limit=0) as running:
            accepted = running.client.submit(
                dict(SPEC, shard_size=2, chaos_kill_key=victim)
            )
            campaign_id = accepted["id"]
            # retry_limit=0: the chaos kill immediately fails unit 1
            status = running.client.wait(campaign_id, timeout_s=120)
            assert status["state"] == "failed"
            assert 0 < status["completed"] < len(_grid())

        with _RunningService(state_dir) as running:
            status = running.client.wait(campaign_id, timeout_s=120)
            assert status["state"] == "done"
            assert status["resumed"] > 0  # folded from the shard journals
            result, payload = _result_json_bytes(running.client, campaign_id)
            assert payload["complete"]
            assert result == baseline

    def test_offline_report_of_the_campaign_dir_matches(
        self, tmp_path, baseline, capsys
    ):
        """``repro campaign --report <campaign dir>`` merges manifest +
        shards without the service running."""
        state_dir = tmp_path / "state"
        with _RunningService(state_dir) as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
            campaign_dir = state_dir / accepted["id"]

        out_json = tmp_path / "report.json"
        code = main([
            "campaign", "--report", str(campaign_dir),
            "--json", str(out_json),
        ])
        assert code == 0
        assert out_json.read_bytes() == baseline

    def test_report_rejects_a_non_service_directory(self, tmp_path, capsys):
        (tmp_path / "not-a-campaign").mkdir()
        code = main([
            "campaign", "--report", str(tmp_path / "not-a-campaign"),
            "--json", "-",
        ])
        assert code == 2
        assert "manifest" in capsys.readouterr().err


class TestResultCli:
    def test_result_json_flag_writes_batch_identical_bytes(
        self, tmp_path, baseline, capsys
    ):
        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
            out_json = tmp_path / "cli.json"
            code = main([
                "result", accepted["id"], "--url", running.url,
                "--json", str(out_json),
            ])
            assert code == 0
            assert out_json.read_bytes() == baseline
            out = capsys.readouterr().out
            assert "complete" in out

    def test_status_cli_renders_units(self, tmp_path, capsys):
        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            code = main([
                "status", accepted["id"], "--url", running.url, "--wait",
                "--wait-timeout", "120",
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "done" in out and "unit" in out
