"""Service observability: /metrics, /healthz, and exactly-once folding.

The load-bearing invariant: the service's ``/metrics`` campaign
counters are folded from per-scenario row deltas *exactly once per
scenario key* — so after any amount of worker chaos (SIGKILL mid-shard,
unit resubmission, re-executed scenarios) they equal the totals an
offline fold of the shard journals produces.
"""

import time

import pytest

from repro.cli import main
from repro.experiments.campaign import build_grid, summary_from_journals
from repro.obs import sanitize_metric_name

from .test_service_e2e import _RunningService

GRID_ARGS = dict(families=["chain", "star"], sizes=[4], seeds=2)
SPEC = {"families": ["chain", "star"], "sizes": [4], "seeds": 2}


def _grid():
    return build_grid(**GRID_ARGS)


def _parse_prometheus(text):
    """``{sample-line-prefix: value}`` for every non-comment line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_metrics_render_and_match_journal_fold(self, tmp_path):
        state_dir = tmp_path / "state"
        with _RunningService(state_dir) as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
            text = running.client.metrics_text()
            samples = _parse_prometheus(text)
            assert "# TYPE repro_service_uptime_seconds gauge" in text
            assert samples["repro_scenarios_completed_total"] == len(_grid())
            assert samples["repro_scenario_errors_total"] == 0
            assert samples['repro_worker_alive{slot="0"}'] == 1
            # Every folded campaign counter equals an offline fold of
            # the shard journals (the acceptance criterion of the
            # issue); spot timing series with approx.
            offline = summary_from_journals(
                [str(state_dir / accepted["id"])]
            )
            assert offline.metrics["phase.scenario.count"] == len(_grid())
            for name, value in offline.metrics.items():
                exposed = f"repro_{sanitize_metric_name(name)}"
                assert samples[exposed] == pytest.approx(value)

    def test_chaos_killed_worker_counts_each_scenario_exactly_once(
        self, tmp_path
    ):
        """SIGKILL a worker mid-shard: the re-executed unit must not
        double-fold any scenario's delta into the campaign counters."""
        victim = _grid()[3].key()
        state_dir = tmp_path / "state"
        with _RunningService(state_dir) as running:
            accepted = running.client.submit(
                dict(SPEC, shard_size=2, chaos_kill_key=victim)
            )
            status = running.client.wait(accepted["id"], timeout_s=120)
            assert status["state"] == "done"
            assert status["retries"] >= 1
            samples = _parse_prometheus(running.client.metrics_text())
            assert samples["repro_scenarios_completed_total"] == len(_grid())
            assert samples["repro_unit_retries_total"] >= 1
            offline = summary_from_journals(
                [str(state_dir / accepted["id"])]
            )
            assert offline.metrics["phase.scenario.count"] == len(_grid())
            assert (
                samples["repro_phase_scenario_count"]
                == offline.metrics["phase.scenario.count"]
            )
            assert (
                samples["repro_phase_synthesize_count"]
                == offline.metrics["phase.synthesize.count"]
            )

    def test_restarted_service_recovers_metrics_from_journals(
        self, tmp_path
    ):
        """A fresh service over the same state dir refolds campaign
        metrics from the shard journals, not from zero."""
        state_dir = tmp_path / "state"
        with _RunningService(state_dir) as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
        with _RunningService(state_dir) as running:
            samples = _parse_prometheus(running.client.metrics_text())
            assert samples["repro_phase_scenario_count"] == len(_grid())


class TestHealthz:
    def test_healthz_carries_uptime_version_and_worker_summaries(
        self, tmp_path
    ):
        from repro import __version__

        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
            health = running.client.health()
            assert health["ok"]
            assert health["version"] == __version__
            assert health["uptime_s"] > 0
            assert health["campaigns"] == 1
            workers = health["workers"]
            assert len(workers) == 2
            for worker in workers:
                assert worker["alive"]
                assert worker["restarts"] == 0
                assert "heartbeat_age_s" in worker
                summary = worker["metrics"]
                assert set(summary) >= {
                    "scenarios", "scenario_time_s", "routes_built",
                    "cache_hits", "cache_misses",
                }
            # Heartbeats ship cumulative worker snapshots every 0.5s,
            # so poll briefly until the final post-unit beat lands.
            deadline = time.monotonic() + 15
            while True:
                workers = running.client.health()["workers"]
                total = sum(w["metrics"]["scenarios"] for w in workers)
                if total == len(_grid()) or time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            assert total == len(_grid())


class TestStatusCli:
    def test_status_renders_service_health(self, tmp_path, capsys):
        with _RunningService(tmp_path / "state") as running:
            code = main(["status", "--url", running.url])
            assert code == 0
            out = capsys.readouterr().out
            assert "service v" in out
            assert "worker 0:" in out and "worker 1:" in out
            assert "no campaigns" in out

    def test_status_json_mode(self, tmp_path, capsys):
        import json

        with _RunningService(tmp_path / "state") as running:
            accepted = running.client.submit(dict(SPEC, shard_size=2))
            running.client.wait(accepted["id"], timeout_s=120)
            code = main(["status", "--url", running.url, "--json"])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["health"]["ok"]
            assert len(payload["campaigns"]) == 1
            code = main([
                "status", accepted["id"], "--url", running.url, "--json",
            ])
            assert code == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "done"
            assert status["completed"] == len(_grid())

    def test_status_metrics_mode(self, tmp_path, capsys):
        with _RunningService(tmp_path / "state") as running:
            code = main(["status", "--url", running.url, "--metrics"])
            assert code == 0
            out = capsys.readouterr().out
            assert "# TYPE repro_service_uptime_seconds gauge" in out
            assert "repro_service_workers 2" in out
