"""Analyzer rules against hand-built configs and reference cells."""

from repro.analysis import PolicyAnalyzer, RULES, analyze_configs, analyze_text
from repro.cisco.generator import generate_cisco
from repro.netmodel.communities import Community
from repro.netmodel.device import RouterConfig
from repro.netmodel.ip import Prefix, PrefixRange
from repro.netmodel.prefixlist import PrefixList
from repro.netmodel.routing_policy import (
    Action,
    MatchCommunityInline,
    MatchPrefixList,
    RouteMap,
    RouteMapClause,
    SetMed,
)
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs


def _cell_reports(family, size, **extra):
    topology = generate_network(family, size, **extra).topology
    configs = build_reference_configs(topology)
    texts = {name: generate_cisco(config) for name, config in configs.items()}
    return topology, configs, texts


def _bare(hostname="R1"):
    return RouterConfig(hostname=hostname, vendor="cisco")


class TestCleanReferenceCells:
    def test_star_reference_is_clean(self):
        topology, configs, texts = _cell_reports("star", 7)
        report = analyze_configs(configs, topology=topology, texts=texts)
        assert len(report) == 0, report.render_text()

    def test_border_reference_is_clean(self):
        topology, configs, texts = _cell_reports(
            "random", 8, seed=1, roles="c2i2h2"
        )
        report = analyze_configs(configs, topology=topology, texts=texts)
        assert len(report) == 0, report.render_text()


class TestReferenceRules:
    def test_undefined_prefix_list_is_high(self):
        config = _bare()
        config.route_maps["M"] = RouteMap(
            name="M",
            clauses=[
                RouteMapClause(
                    seq=10,
                    action=Action.PERMIT,
                    matches=[MatchPrefixList("NOPE")],
                )
            ],
        )
        report = analyze_configs({"R1": config})
        (finding,) = report.for_router("R1")
        assert finding.rule == "undefined-ref"
        assert finding.severity.value == "high"
        assert "NOPE" in finding.message
        assert finding.clause_seq == 10

    def test_unused_prefix_list_is_low(self):
        config = _bare()
        unused = PrefixList("ORPHAN")
        unused.add("permit", PrefixRange.exact(Prefix.parse("10.0.0.0/24")))
        config.add_prefix_list(unused)
        report = analyze_configs({"R1": config})
        rules = {finding.rule for finding in report}
        assert rules == {"unused-list"}

    def test_sets_on_deny_clause_are_noop(self):
        config = _bare()
        config.route_maps["M"] = RouteMap(
            name="M",
            clauses=[
                RouteMapClause(
                    seq=10,
                    action=Action.DENY,
                    sets=[SetMed(50)],
                ),
                RouteMapClause(seq=20, action=Action.PERMIT),
            ],
        )
        report = analyze_configs({"R1": config})
        assert "noop-set" in report.by_rule()

    def test_inline_community_match_is_high(self):
        config = _bare()
        config.route_maps["M"] = RouteMap(
            name="M",
            clauses=[
                RouteMapClause(
                    seq=10,
                    action=Action.PERMIT,
                    matches=[MatchCommunityInline(Community(100, 1))],
                )
            ],
        )
        report = analyze_configs({"R1": config})
        assert "inline-community-match" in report.by_rule()
        assert report.high >= 1


class TestShadowing:
    def test_duplicate_clause_is_shadowed(self):
        config = _bare()
        prefix_list = PrefixList("PL")
        prefix_list.add("permit", PrefixRange.exact(Prefix.parse("10.0.0.0/24")))
        config.add_prefix_list(prefix_list)
        config.route_maps["M"] = RouteMap(
            name="M",
            clauses=[
                RouteMapClause(
                    seq=10,
                    action=Action.PERMIT,
                    matches=[MatchPrefixList("PL")],
                ),
                RouteMapClause(
                    seq=20,
                    action=Action.DENY,
                    matches=[MatchPrefixList("PL")],
                ),
            ],
        )
        report = analyze_configs({"R1": config})
        shadowed = [f for f in report if f.rule == "shadowed-clause"]
        assert [f.clause_seq for f in shadowed] == [20]

    def test_reachable_clauses_are_not_shadowed(self):
        # The reference egress maps are deny-then-permit: every clause
        # reachable, so the rule must stay silent on them (precision).
        topology, configs, texts = _cell_reports(
            "random", 8, seed=1, roles="c2i2h2"
        )
        report = analyze_configs(configs, topology=topology, texts=texts)
        assert "shadowed-clause" not in report.by_rule()


class TestRoleRules:
    def test_permissive_egress_leaks_transit(self):
        topology, configs, texts = _cell_reports(
            "random", 8, seed=1, roles="c2i2h2"
        )
        analyzer = PolicyAnalyzer(configs, topology=topology)
        (router, ip, slot, label) = analyzer._guarded_sessions()[0]
        config = configs[router]
        neighbor = config.bgp.neighbors[ip]
        # Replace the egress filter with blanket permit: every other
        # slot's tagged routes now transit this session.
        from repro.netmodel.routing_policy import permit_all

        map_name = neighbor.export_policy
        config.route_maps[map_name] = permit_all(map_name)
        report = analyze_configs(configs, topology=topology)
        leaks = [f for f in report if f.rule == "transit-leak"]
        assert any(f.router == router for f in leaks)

    def test_missing_export_policy_is_flagged(self):
        topology, configs, texts = _cell_reports(
            "random", 8, seed=1, roles="c2i2h2"
        )
        analyzer = PolicyAnalyzer(configs, topology=topology)
        (router, ip, slot, label) = analyzer._guarded_sessions()[0]
        neighbor = configs[router].bgp.neighbors[ip]
        neighbor.export_policy = None
        report = analyze_configs(configs, topology=topology)
        assert any(
            f.rule == "transit-leak" and f.router == router for f in report
        )


class TestConformance:
    def test_wrong_local_as_is_flagged(self):
        topology, configs, texts = _cell_reports("star", 7)
        configs["R3"].bgp.asn += 1
        report = analyze_configs(configs, topology=topology)
        assert any(
            f.rule == "local-as-mismatch" and f.router == "R3" for f in report
        )

    def test_missing_router_tolerated(self):
        # Campaign drafts can lack a router entirely; the analyzer must
        # not crash, and conformance only covers present configs.
        topology, configs, texts = _cell_reports("star", 7)
        del configs["R2"]
        report = analyze_configs(configs, topology=topology)
        assert len(report) == 0


class TestTextRules:
    def test_cli_keywords_at_top_level_fire(self):
        report = analyze_text("R1", "configure terminal\nhostname R1\n")
        assert any(f.rule == "cli-keywords" for f in report)

    def test_indented_exit_is_config_syntax(self):
        # Inside a block, ``exit`` is legitimate config-mode syntax —
        # only unindented CLI keywords are the cli_keywords fault shape.
        clean = "router bgp 100\n exit\n"
        assert len(analyze_text("R1", clean)) == 0

    def test_stray_ip_routing_fires(self):
        report = analyze_text("R1", "ip routing\nhostname R1\n")
        assert any(f.rule == "stray-ip-routing" for f in report)

    def test_unindented_neighbor_fires(self):
        text = "hostname R1\nneighbor 10.0.0.2 route-map M out\n"
        report = analyze_text("R1", text)
        assert any(f.rule == "misplaced-neighbor" for f in report)


class TestRulesTable:
    def test_every_rule_has_severity_and_description(self):
        assert RULES
        for rule, (severity, description) in RULES.items():
            assert rule == rule.lower()
            assert severity.value in ("high", "medium", "low")
            assert description
