"""Findings container: ordering, counting, serialization determinism."""

from repro.analysis import Finding, LintReport, Severity


def _finding(**overrides):
    base = dict(
        rule="unused-list",
        severity=Severity.LOW,
        router="R1",
        ref="prefix-list PL",
        message="never referenced",
    )
    base.update(overrides)
    return Finding(**base)


class TestSeverity:
    def test_rank_orders_high_first(self):
        assert Severity.HIGH.rank < Severity.MEDIUM.rank < Severity.LOW.rank

    def test_str_is_the_wire_value(self):
        assert str(Severity.HIGH) == "high"


class TestFinding:
    def test_site_includes_clause_and_line(self):
        finding = _finding(clause_seq=20, line=7)
        assert finding.site() == "R1 prefix-list PL seq 20 line 7"

    def test_describe_mentions_fix_hint(self):
        finding = _finding(fix_hint="delete it")
        assert "(fix: delete it)" in finding.describe()

    def test_to_dict_round_trips_severity_as_string(self):
        assert _finding().to_dict()["severity"] == "low"


class TestLintReport:
    def test_sort_is_severity_major(self):
        report = LintReport()
        report.add(_finding(rule="b-low", severity=Severity.LOW))
        report.add(_finding(rule="a-high", severity=Severity.HIGH))
        report.add(_finding(rule="c-medium", severity=Severity.MEDIUM))
        report.sort()
        assert [item.rule for item in report] == [
            "a-high", "c-medium", "b-low",
        ]

    def test_sort_breaks_ties_by_router_then_rule(self):
        report = LintReport()
        report.add(_finding(router="R2", rule="a"))
        report.add(_finding(router="R1", rule="b"))
        report.add(_finding(router="R1", rule="a"))
        report.sort()
        assert [(item.router, item.rule) for item in report] == [
            ("R1", "a"), ("R1", "b"), ("R2", "a"),
        ]

    def test_serialization_is_insertion_order_independent(self):
        first = LintReport()
        second = LintReport()
        items = [
            _finding(rule="x", severity=Severity.HIGH),
            _finding(rule="y", severity=Severity.LOW, router="R3"),
            _finding(rule="z", severity=Severity.MEDIUM, clause_seq=10),
        ]
        for item in items:
            first.add(item)
        for item in reversed(items):
            second.add(item)
        assert first.to_dict() == second.to_dict()
        assert first.render_text() == second.render_text()

    def test_counts(self):
        report = LintReport()
        report.add(_finding(severity=Severity.HIGH))
        report.add(_finding(severity=Severity.HIGH, router="R2"))
        report.add(_finding(severity=Severity.LOW))
        assert report.high == 2
        assert report.count(Severity.LOW) == 1
        assert report.to_dict()["counts"] == {
            "total": 3, "high": 2, "medium": 0, "low": 1,
        }

    def test_by_rule_and_for_router(self):
        report = LintReport()
        report.add(_finding(rule="a"))
        report.add(_finding(rule="a", router="R2"))
        report.add(_finding(rule="b"))
        assert report.by_rule() == {"a": 2, "b": 1}
        assert len(report.for_router("R2")) == 1

    def test_extend_accepts_reports_and_lists(self):
        report = LintReport()
        other = LintReport()
        other.add(_finding())
        report.extend(other)
        report.extend([_finding(router="R2")])
        assert len(report) == 2
