"""``repro lint`` CLI: exit codes, JSON payloads, flag conflicts."""

import json


from repro.cli import main


class TestExitCodes:
    def test_clean_family_exits_zero(self, capsys):
        assert main(["lint", "--family", "star", "--routers", "7"]) == 0
        out = capsys.readouterr().out
        assert "0 HIGH" in out or "no findings" in out.lower() or out

    def test_injected_fault_exits_one(self):
        code = main(
            ["lint", "--family", "star", "--routers", "7",
             "--fault", "missing_ingress_tag"]
        )
        assert code == 1

    def test_unknown_fault_exits_two(self, capsys):
        code = main(["lint", "--fault", "definitely_not_a_fault"])
        assert code == 2
        err = capsys.readouterr().err
        # The error message lists the catalog so the next invocation
        # can be typo-free.
        assert "missing_ingress_tag" in err

    def test_validate_rejects_cell_flags(self, capsys):
        code = main(["lint", "--validate", "--family", "chain"])
        assert code == 2


class TestJsonOutput:
    def test_json_payload_is_machine_readable(self, capsys):
        code = main(["lint", "--family", "star", "--routers", "7", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["high"] == 0
        assert payload["findings"] == []

    def test_fault_json_carries_findings(self, capsys):
        code = main(
            ["lint", "--family", "star", "--routers", "7",
             "--fault", "missing_ingress_tag", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["high"] >= 1
        assert any(
            finding["rule"] == "untagged-ingress"
            for finding in payload["findings"]
        )

    def test_out_writes_the_payload(self, tmp_path, capsys):
        out_path = tmp_path / "lint.json"
        code = main(
            ["lint", "--family", "star", "--routers", "7",
             "--json", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["counts"]["total"] == 0
