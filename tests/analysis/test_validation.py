"""Simulator-grounded validation harness, tier-1 sized.

The full nine-cell run is the CI gate (``repro lint --validate``);
here a two-cell subset — one hand-shaped, one seeded border cell —
keeps the same invariants under tier 1: clean references produce zero
findings, and every applicable catalog fault is detected at its
injection site.
"""

from repro.analysis.validation import (
    CELLS,
    EXPECTED_RULES,
    cell_id,
    run_validation,
)
from repro.analysis import RULES
from repro.llm.synthesis_faults import synthesis_fault_catalog
from repro.topology.families import generate_network

SUBSET = [
    ("star", 7, {}),
    ("random", 8, {"seed": 1, "roles": "c2i2h2"}),
]


class TestSubsetGate:
    def test_subset_passes_the_gate(self):
        report = run_validation(SUBSET)
        assert report.cells == [cell_id(*cell) for cell in SUBSET]
        # Precision: the simulator-verified references are clean — not
        # just zero HIGH, zero findings of any severity.
        assert report.clean_findings == 0
        assert report.clean_high == 0
        # Recall: every applicable injected fault detected at its site.
        assert report.applicable > 0
        assert report.missed == []
        assert report.recall == 1.0
        assert report.ok

    def test_report_serializes_and_renders(self):
        report = run_validation([("star", 7, {})])
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["clean"]["high"] == 0
        assert payload["faults"]["detected"] == payload["faults"]["applicable"]
        text = report.render_text()
        assert "gate: PASS" in text


class TestHarnessWiring:
    def test_expected_rules_cover_the_catalog(self):
        topology = generate_network("random", 8, seed=1, roles="c2i2h2").topology
        catalog = synthesis_fault_catalog(topology)
        assert set(EXPECTED_RULES) == set(catalog)

    def test_expected_rules_exist(self):
        for rules in EXPECTED_RULES.values():
            for rule in rules:
                assert rule in RULES, rule

    def test_cell_grid_is_the_canonical_nine(self):
        assert len(CELLS) == 9
        assert len({cell_id(*cell) for cell in CELLS}) == 9
