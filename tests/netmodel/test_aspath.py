"""Tests for AS paths and AS-path access lists."""

from repro.netmodel.aspath import AsPath, AsPathAccessList, path_through


class TestAsPath:
    def test_parse(self):
        assert AsPath.parse("65001 65002").asns == (65001, 65002)

    def test_render(self):
        assert path_through([1, 2, 3]).render() == "1 2 3"

    def test_empty_render(self):
        assert AsPath().render() == ""

    def test_prepend(self):
        path = path_through([200]).prepend(100)
        assert path.asns == (100, 200)

    def test_prepend_count(self):
        path = AsPath().prepend(7, count=3)
        assert path.asns == (7, 7, 7)

    def test_prepend_returns_new(self):
        original = path_through([1])
        original.prepend(2)
        assert original.asns == (1,)

    def test_contains(self):
        assert path_through([10, 20]).contains(20)
        assert not path_through([10, 20]).contains(30)

    def test_len(self):
        assert len(path_through([1, 2, 3])) == 3


class TestAsPathAccessList:
    def test_permit_match(self):
        acl = AsPathAccessList("1")
        acl.add("permit", "100")
        assert acl.permits(path_through([100, 200]))

    def test_default_deny(self):
        acl = AsPathAccessList("1")
        acl.add("permit", "999")
        assert not acl.permits(path_through([100]))

    def test_first_match_wins(self):
        acl = AsPathAccessList("1")
        acl.add("deny", "100")
        acl.add("permit", ".*")
        assert not acl.permits(path_through([100]))
        assert acl.permits(path_through([200]))

    def test_underscore_boundary(self):
        acl = AsPathAccessList("1")
        acl.add("permit", "_65001_")
        assert acl.permits(path_through([65001]))
        assert acl.permits(path_through([1, 65001, 2]))

    def test_underscore_not_substring(self):
        acl = AsPathAccessList("1")
        acl.add("permit", "_6500_")
        assert not acl.permits(path_through([65001]))

    def test_anchored_origin(self):
        acl = AsPathAccessList("1")
        acl.add("permit", "^100")
        assert acl.permits(path_through([100, 7]))
        assert not acl.permits(path_through([7, 100]))

    def test_empty_list_denies(self):
        assert not AsPathAccessList("empty").permits(path_through([1]))
