"""Tests for interfaces, BGP/OSPF processes, and RouterConfig."""

from repro.netmodel import (
    BgpNeighbor,
    BgpProcess,
    Interface,
    Ipv4Address,
    OspfProcess,
    Prefix,
    Protocol,
    Redistribution,
    RouteMap,
    RouterConfig,
    Vendor,
)
from repro.netmodel.routing_policy import (
    Action,
    MatchCommunityList,
    MatchPrefixList,
    RouteMapClause,
)


class TestInterface:
    def test_with_address_keeps_host_bits(self):
        iface = Interface.with_address("eth0/1", "2.0.0.1/24")
        assert str(iface.address) == "2.0.0.1"
        assert str(iface.prefix) == "2.0.0.0/24"

    def test_cidr(self):
        iface = Interface.with_address("eth0", "10.0.0.5/30")
        assert iface.cidr() == "10.0.0.5/30"

    def test_cidr_unnumbered_raises(self):
        import pytest

        with pytest.raises(ValueError):
            Interface(name="eth0").cidr()

    def test_is_loopback(self):
        assert Interface(name="Loopback0").is_loopback()
        assert Interface(name="lo0").is_loopback()
        assert not Interface(name="eth0/0").is_loopback()


class TestBgpProcess:
    def test_add_and_get_neighbor(self):
        bgp = BgpProcess(asn=100)
        neighbor = BgpNeighbor(ip=Ipv4Address.parse("1.0.0.2"), remote_as=2)
        bgp.add_neighbor(neighbor)
        assert bgp.get_neighbor("1.0.0.2") is neighbor
        assert bgp.get_neighbor(Ipv4Address.parse("1.0.0.2")) is neighbor

    def test_remove_neighbor(self):
        bgp = BgpProcess(asn=100)
        bgp.add_neighbor(BgpNeighbor(ip=Ipv4Address.parse("1.0.0.2"), remote_as=2))
        bgp.remove_neighbor("1.0.0.2")
        assert bgp.get_neighbor("1.0.0.2") is None

    def test_announce_idempotent(self):
        bgp = BgpProcess(asn=100)
        prefix = Prefix.parse("1.0.0.0/24")
        bgp.announce(prefix)
        bgp.announce(prefix)
        assert bgp.networks == [prefix]
        assert bgp.announces(prefix)

    def test_sorted_neighbors(self):
        bgp = BgpProcess(asn=100)
        bgp.add_neighbor(BgpNeighbor(ip=Ipv4Address.parse("2.0.0.2"), remote_as=3))
        bgp.add_neighbor(BgpNeighbor(ip=Ipv4Address.parse("1.0.0.2"), remote_as=2))
        ips = [str(n.ip) for n in bgp.sorted_neighbors()]
        assert ips == ["1.0.0.2", "2.0.0.2"]


class TestOspfProcess:
    def test_add_network_dedupes(self):
        ospf = OspfProcess()
        ospf.add_network(Prefix.parse("1.0.0.0/24"), area=0)
        ospf.add_network(Prefix.parse("1.0.0.0/24"), area=0)
        assert len(ospf.networks) == 1

    def test_passive(self):
        ospf = OspfProcess()
        ospf.set_passive("Loopback0")
        ospf.set_passive("Loopback0")
        assert ospf.is_passive("Loopback0")
        assert ospf.passive_interfaces == ["Loopback0"]

    def test_covers(self):
        ospf = OspfProcess()
        ospf.add_network(Prefix.parse("1.0.0.0/16"), area=7)
        assert ospf.covers(Prefix.parse("1.0.3.0/24")) == 7
        assert ospf.covers(Prefix.parse("9.0.0.0/24")) is None

    def test_interface_areas(self):
        ospf = OspfProcess()
        ospf.add_area_interface(0, "eth0")
        ospf.add_area_interface(1, "eth1")
        ospf.add_area_interface(0, "eth0")
        assert ospf.interface_areas() == [("eth0", 0), ("eth1", 1)]


class TestRouterConfig:
    def test_policy_context_lookups(self):
        cfg = RouterConfig(hostname="r1")
        assert cfg.get_prefix_list("x") is None
        assert cfg.get_community_list("x") is None
        assert cfg.get_as_path_list("x") is None

    def test_ensure_bgp_idempotent(self):
        cfg = RouterConfig(hostname="r1")
        bgp = cfg.ensure_bgp(100)
        assert cfg.ensure_bgp(999) is bgp
        assert bgp.asn == 100

    def test_ensure_ospf_idempotent(self):
        cfg = RouterConfig(hostname="r1")
        ospf = cfg.ensure_ospf(1)
        assert cfg.ensure_ospf(2) is ospf

    def test_interface_with_address(self):
        cfg = RouterConfig(hostname="r1")
        iface = Interface.with_address("eth0", "2.0.0.1/24")
        cfg.add_interface(iface)
        assert cfg.interface_with_address(Ipv4Address.parse("2.0.0.1")) is iface
        assert cfg.interface_with_address(Ipv4Address.parse("9.9.9.9")) is None

    def test_sorted_interfaces(self):
        cfg = RouterConfig(hostname="r1")
        cfg.add_interface(Interface(name="eth1"))
        cfg.add_interface(Interface(name="eth0"))
        assert [i.name for i in cfg.sorted_interfaces()] == ["eth0", "eth1"]

    def test_undefined_references_neighbor_policy(self):
        cfg = RouterConfig(hostname="r1")
        bgp = cfg.ensure_bgp(100)
        bgp.add_neighbor(
            BgpNeighbor(
                ip=Ipv4Address.parse("1.0.0.2"),
                remote_as=2,
                import_policy="missing-map",
            )
        )
        assert "route-map missing-map" in cfg.undefined_references()

    def test_undefined_references_prefix_list(self):
        cfg = RouterConfig(hostname="r1")
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.matches.append(MatchPrefixList("ghost"))
        rm.add_clause(clause)
        cfg.add_route_map(rm)
        assert "prefix-list ghost" in cfg.undefined_references()

    def test_undefined_references_community_list(self):
        cfg = RouterConfig(hostname="r1")
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.DENY)
        clause.matches.append(MatchCommunityList("ghost"))
        rm.add_clause(clause)
        cfg.add_route_map(rm)
        assert "community-list ghost" in cfg.undefined_references()

    def test_undefined_references_redistribution_map(self):
        cfg = RouterConfig(hostname="r1")
        bgp = cfg.ensure_bgp(100)
        bgp.redistributions.append(
            Redistribution(protocol=Protocol.OSPF, route_map="ghost")
        )
        assert "route-map ghost" in cfg.undefined_references()

    def test_no_undefined_references_when_clean(self):
        cfg = RouterConfig(hostname="r1")
        assert cfg.undefined_references() == []

    def test_vendor_default(self):
        assert RouterConfig(hostname="r1").vendor is Vendor.CISCO
