"""Tests for the route-map IR and its evaluation semantics."""

import pytest

from repro.netmodel import (
    Action,
    AsPathAccessList,
    Community,
    CommunityList,
    CommunityListEntry,
    Ipv4Address,
    MatchAsPathList,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    PolicyEvaluationError,
    Prefix,
    PrefixList,
    PrefixRange,
    Protocol,
    Route,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
    path_through,
    permit_all,
)


@pytest.fixture()
def config():
    cfg = RouterConfig(hostname="r1")
    plist = PrefixList("nets")
    plist.add("permit", PrefixRange.exact(Prefix.parse("1.2.3.0/24")))
    cfg.add_prefix_list(plist)
    clist = CommunityList("tags")
    clist.add(CommunityListEntry("permit", (Community(100, 1),)))
    cfg.add_community_list(clist)
    acl = AsPathAccessList("paths")
    acl.add("permit", "_200_")
    cfg.add_as_path_list(acl)
    return cfg


def _route(**kwargs):
    return Route(prefix=Prefix.parse("1.2.3.0/24"), **kwargs)


class TestMatchConditions:
    def test_match_prefix_list(self, config):
        condition = MatchPrefixList("nets")
        assert condition.matches(_route(), config)
        assert not condition.matches(
            Route(prefix=Prefix.parse("9.9.9.0/24")), config
        )

    def test_match_prefix_list_undefined_raises(self, config):
        with pytest.raises(PolicyEvaluationError):
            MatchPrefixList("missing").matches(_route(), config)

    def test_match_prefix_ranges(self, config):
        condition = MatchPrefixRanges(
            (PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32),)
        )
        assert condition.matches(_route(), config)
        assert condition.matches(
            Route(prefix=Prefix.parse("1.2.3.0/28")), config
        )

    def test_match_community_list(self, config):
        condition = MatchCommunityList("tags")
        tagged = _route(communities=frozenset({Community(100, 1)}))
        assert condition.matches(tagged, config)
        assert not condition.matches(_route(), config)

    def test_match_community_list_undefined_raises(self, config):
        with pytest.raises(PolicyEvaluationError):
            MatchCommunityList("missing").matches(_route(), config)

    def test_match_community_inline(self, config):
        condition = MatchCommunityInline(Community(100, 1))
        assert condition.matches(
            _route(communities=frozenset({Community(100, 1)})), config
        )
        assert "invalid IOS syntax" in condition.describe()

    def test_match_as_path(self, config):
        condition = MatchAsPathList("paths")
        assert condition.matches(_route(as_path=path_through([200])), config)
        assert not condition.matches(_route(), config)

    def test_match_protocol(self, config):
        condition = MatchProtocol(Protocol.BGP)
        assert condition.matches(_route(), config)
        assert not condition.matches(
            _route(protocol=Protocol.OSPF), config
        )


class TestSetActions:
    def test_set_community_additive(self):
        action = SetCommunity((Community(2, 2),), additive=True)
        route = action.apply(_route(communities=frozenset({Community(1, 1)})))
        assert route.communities == {Community(1, 1), Community(2, 2)}

    def test_set_community_replacing(self):
        action = SetCommunity((Community(2, 2),), additive=False)
        route = action.apply(_route(communities=frozenset({Community(1, 1)})))
        assert route.communities == {Community(2, 2)}

    def test_set_community_empty_noop(self):
        action = SetCommunity((), additive=False)
        route = _route(communities=frozenset({Community(1, 1)}))
        assert action.apply(route) == route

    def test_set_med(self):
        assert SetMed(50).apply(_route()).med == 50

    def test_set_local_pref(self):
        assert SetLocalPref(300).apply(_route()).local_pref == 300

    def test_set_next_hop(self):
        hop = Ipv4Address.parse("2.3.4.1")
        assert SetNextHop(hop).apply(_route()).next_hop == hop

    def test_set_as_path_prepend(self):
        route = SetAsPathPrepend(100, 2).apply(_route())
        assert route.as_path.asns == (100, 100)

    def test_describe_additive_mentions_keyword(self):
        action = SetCommunity((Community(1, 1),), additive=True)
        assert "additive" in action.describe()


class TestRouteMapEvaluation:
    def test_permit_applies_sets(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.matches.append(MatchPrefixList("nets"))
        clause.sets.append(SetMed(50))
        rm.add_clause(clause)
        result = rm.evaluate(_route(), config)
        assert result.permitted
        assert result.route.med == 50
        assert result.clause_seq == 10

    def test_deny_does_not_apply_sets(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.DENY)
        clause.sets.append(SetMed(50))
        rm.add_clause(clause)
        result = rm.evaluate(_route(), config)
        assert not result.permitted
        assert result.route.med == 0

    def test_implicit_deny_when_nothing_matches(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.matches.append(MatchPrefixList("nets"))
        rm.add_clause(clause)
        result = rm.evaluate(Route(prefix=Prefix.parse("9.9.9.0/24")), config)
        assert not result.permitted
        assert result.clause_seq is None

    def test_first_matching_clause_is_terminal(self, config):
        rm = RouteMap("m")
        deny = RouteMapClause(seq=10, action=Action.DENY)
        deny.matches.append(MatchPrefixList("nets"))
        rm.add_clause(deny)
        rm.add_clause(RouteMapClause(seq=20, action=Action.PERMIT))
        assert not rm.evaluate(_route(), config).permitted

    def test_clauses_evaluated_in_seq_order(self, config):
        rm = RouteMap("m")
        rm.add_clause(RouteMapClause(seq=20, action=Action.DENY))
        rm.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
        assert rm.evaluate(_route(), config).clause_seq == 10

    def test_and_semantics_within_clause(self, config):
        """The paper's §4.2 lesson: all matches in one stanza must hold."""
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.DENY)
        clause.matches.append(MatchCommunityList("tags"))
        clause.matches.append(MatchProtocol(Protocol.OSPF))
        rm.add_clause(clause)
        rm.add_clause(RouteMapClause(seq=20, action=Action.PERMIT))
        # Carries the tag but is BGP: the AND clause does not fire.
        tagged_bgp = _route(communities=frozenset({Community(100, 1)}))
        assert rm.evaluate(tagged_bgp, config).permitted

    def test_or_semantics_across_clauses(self, config):
        clist2 = CommunityList("tags2")
        clist2.add(CommunityListEntry("permit", (Community(101, 1),)))
        config.add_community_list(clist2)
        rm = RouteMap("m")
        for seq, name in ((10, "tags"), (20, "tags2")):
            clause = RouteMapClause(seq=seq, action=Action.DENY)
            clause.matches.append(MatchCommunityList(name))
            rm.add_clause(clause)
        rm.add_clause(RouteMapClause(seq=30, action=Action.PERMIT))
        either = _route(communities=frozenset({Community(101, 1)}))
        assert not rm.evaluate(either, config).permitted

    def test_sets_applied_in_order(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.sets.append(SetMed(1))
        clause.sets.append(SetMed(2))
        rm.add_clause(clause)
        assert rm.evaluate(_route(), config).route.med == 2

    def test_get_clause(self):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        rm.add_clause(clause)
        assert rm.get_clause(10) is clause
        assert rm.get_clause(99) is None

    def test_referenced_prefix_lists(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.matches.append(MatchPrefixList("nets"))
        rm.add_clause(clause)
        assert rm.referenced_prefix_lists() == ["nets"]

    def test_referenced_community_lists(self, config):
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.DENY)
        clause.matches.append(MatchCommunityList("tags"))
        rm.add_clause(clause)
        assert rm.referenced_community_lists() == ["tags"]

    def test_permit_all_helper(self, config):
        rm = permit_all("open")
        assert rm.evaluate(_route(), config).permitted

    def test_clause_describe(self):
        clause = RouteMapClause(seq=10, action=Action.DENY)
        clause.matches.append(MatchCommunityList("tags"))
        assert "community-list tags" in clause.describe()
