"""Tests for standard ACLs."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel import AccessList, AclEntry, Prefix
from repro.netmodel.ip import AddressError


class TestAclEntry:
    def test_host_match(self):
        entry = AclEntry.from_strings("permit", "1.2.3.0")
        assert entry.matches_prefix(Prefix.parse("1.2.3.0/24"))
        assert not entry.matches_prefix(Prefix.parse("1.2.4.0/24"))

    def test_wildcard_match(self):
        entry = AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255")
        assert entry.matches_prefix(Prefix.parse("1.2.3.0/24"))
        assert entry.matches_prefix(Prefix.parse("1.2.3.128/25"))
        assert not entry.matches_prefix(Prefix.parse("1.2.4.0/24"))

    def test_any(self):
        entry = AclEntry.any()
        assert entry.matches_prefix(Prefix.parse("9.9.9.0/24"))

    def test_invalid_action_rejected(self):
        with pytest.raises(AddressError):
            AclEntry.from_strings("allow", "1.2.3.0")

    def test_contiguous_detection(self):
        assert AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255").is_contiguous()
        assert AclEntry.from_strings("permit", "1.2.3.0", "0.0.255.0").is_contiguous() is False
        assert AclEntry.any().is_contiguous()

    def test_as_prefix_range_contiguous(self):
        entry = AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255")
        prefix_range = entry.as_prefix_range()
        assert str(prefix_range.prefix) == "1.2.3.0/24"
        assert prefix_range.high == 32

    def test_as_prefix_range_host(self):
        entry = AclEntry.from_strings("permit", "1.1.1.1")
        assert str(entry.as_prefix_range().prefix) == "1.1.1.1/32"

    def test_as_prefix_range_non_contiguous_is_none(self):
        entry = AclEntry.from_strings("permit", "1.2.3.0", "0.0.255.0")
        assert entry.as_prefix_range() is None

    def test_render_forms(self):
        assert AclEntry.any().render_cisco() == "permit any"
        assert (
            AclEntry.from_strings("deny", "1.1.1.1").render_cisco()
            == "deny host 1.1.1.1"
        )
        assert (
            AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255").render_cisco()
            == "permit 1.2.3.0 0.0.0.255"
        )


class TestAccessList:
    def test_first_match_wins(self):
        acl = AccessList("1")
        acl.add(AclEntry.from_strings("deny", "1.2.3.0", "0.0.0.255"))
        acl.add(AclEntry.any("permit"))
        assert not acl.permits_prefix(Prefix.parse("1.2.3.0/24"))
        assert acl.permits_prefix(Prefix.parse("9.9.9.0/24"))

    def test_default_deny(self):
        acl = AccessList("1")
        acl.add(AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255"))
        assert not acl.permits_prefix(Prefix.parse("9.9.9.0/24"))

    def test_permitted_ranges_skips_non_contiguous(self):
        acl = AccessList("1")
        acl.add(AclEntry.from_strings("permit", "1.2.3.0", "0.0.0.255"))
        acl.add(AclEntry.from_strings("permit", "2.0.0.0", "0.0.255.0"))
        ranges = acl.permitted_ranges()
        assert len(ranges) == 1

    @given(st.integers(0, 0xFFFFFFFF))
    def test_any_matches_everything(self, network):
        acl = AccessList("1")
        acl.add(AclEntry.any())
        assert acl.permits_prefix(Prefix(network, 24))


class TestAclInRouteMaps:
    def test_parse_numbered_acl(self):
        from repro.cisco import parse_cisco

        result = parse_cisco("access-list 10 permit 1.2.3.0 0.0.0.255\n")
        assert not result.warnings
        acl = result.config.access_lists["10"]
        assert acl.permits_prefix(Prefix.parse("1.2.3.0/24"))

    def test_parse_named_acl_block(self):
        from repro.cisco import parse_cisco

        text = (
            "ip access-list standard OUR\n"
            " permit 1.2.3.0 0.0.0.255\n"
            " deny any\n"
        )
        result = parse_cisco(text)
        assert not result.warnings
        assert len(result.config.access_lists["OUR"].entries) == 2

    def test_match_ip_address_acl(self):
        from repro.cisco import parse_cisco
        from repro.netmodel import MatchAcl

        text = (
            "access-list 10 permit 1.2.3.0 0.0.0.255\n"
            "route-map M permit 10\n"
            " match ip address 10\n"
        )
        result = parse_cisco(text)
        (condition,) = result.config.route_maps["M"].clauses[0].matches
        assert condition == MatchAcl("10")

    def test_acl_route_map_evaluation(self):
        from repro.cisco import parse_cisco
        from repro.netmodel import Route

        text = (
            "access-list 10 permit 1.2.3.0 0.0.0.255\n"
            "route-map M permit 10\n"
            " match ip address 10\n"
        )
        config = parse_cisco(text).config
        rm = config.route_maps["M"]
        assert rm.evaluate(Route(prefix=Prefix.parse("1.2.3.0/25")), config).permitted
        assert not rm.evaluate(Route(prefix=Prefix.parse("9.9.9.0/24")), config).permitted

    def test_acl_roundtrips_through_generator(self):
        from repro.cisco import generate_cisco, parse_cisco

        text = (
            "ip access-list standard OUR\n"
            " permit 1.2.3.0 0.0.0.255\n"
            "route-map M permit 10\n"
            " match ip address OUR\n"
        )
        first = parse_cisco(text).config
        regenerated = generate_cisco(first)
        second = parse_cisco(regenerated)
        assert not second.warnings
        assert "OUR" in second.config.access_lists
        assert "match ip address OUR" in regenerated

    def test_acl_lowered_by_translator(self):
        from repro.cisco import parse_cisco
        from repro.juniper import generate_juniper, parse_juniper, translate_cisco_to_juniper

        text = (
            "hostname r1\n"
            "access-list 10 permit 1.2.3.0 0.0.0.255\n"
            "route-map OUT permit 10\n"
            " match ip address 10\n"
            "router bgp 100\n"
            " neighbor 9.0.0.2 remote-as 9\n"
            " neighbor 9.0.0.2 route-map OUT out\n"
        )
        source = parse_cisco(text).config
        juniper, notes = translate_cisco_to_juniper(source)
        assert "10" in notes.range_lowered_lists
        rendered = generate_juniper(juniper)
        assert "route-filter 1.2.3.0/24 orlonger" in rendered
        assert not parse_juniper(rendered).warnings

    def test_campion_detects_acl_behavior_difference(self):
        """§3.1: ACL-based policy differences are detected like route-map
        ones, with an example prefix."""
        import copy

        from repro.cisco import parse_cisco
        from repro.campion import find_policy_differences

        text = (
            "hostname r1\n"
            "access-list 10 permit 1.2.3.0 0.0.0.255\n"
            "route-map OUT permit 10\n"
            " match ip address 10\n"
            "router bgp 100\n"
            " neighbor 9.0.0.2 remote-as 9\n"
            " neighbor 9.0.0.2 route-map OUT out\n"
        )
        source = parse_cisco(text).config
        translated = copy.deepcopy(source)
        translated.access_lists["10"].entries = [
            # Narrower ACL: only the exact /24 network's first half.
            __import__("repro.netmodel", fromlist=["AclEntry"]).AclEntry.from_strings(
                "permit", "1.2.3.0", "0.0.0.127"
            )
        ]
        findings = find_policy_differences(source, translated)
        assert findings
        assert any(
            f.original_action.value == "permit"
            and f.translated_action.value == "deny"
            for f in findings
        )
