"""PolicyEvaluationError carries its full site on every raise path.

A runtime undefined-reference failure must name the same
(router, route-map, clause) coordinates a ``repro lint``
``undefined-ref`` finding does — whether it surfaces through the
route-by-route evaluator or the prepared batch path.
"""

import pytest

from repro.netmodel.device import RouterConfig
from repro.netmodel.ip import Prefix
from repro.netmodel.route import Route
from repro.netmodel.routing_policy import (
    Action,
    MatchPrefixList,
    PolicyEvaluationError,
    RouteMap,
    RouteMapClause,
)


def _broken_config():
    config = RouterConfig(hostname="R1", vendor="cisco")
    config.route_maps["BROKEN"] = RouteMap(
        name="BROKEN",
        clauses=[
            RouteMapClause(
                seq=10,
                action=Action.PERMIT,
                matches=[MatchPrefixList("NOPE")],
            )
        ],
    )
    return config


def _route():
    return Route(prefix=Prefix.parse("1.2.3.0/24"))


def _assert_full_site(exc: PolicyEvaluationError):
    assert exc.kind == "prefix-list"
    assert exc.name == "NOPE"
    assert exc.router == "R1"
    assert exc.route_map == "BROKEN"
    assert exc.clause_seq == 10
    assert "(router R1, route-map BROKEN, clause 10)" in str(exc)


class TestUnpreparedPath:
    def test_evaluate_names_the_site(self):
        config = _broken_config()
        with pytest.raises(PolicyEvaluationError) as info:
            config.route_maps["BROKEN"].evaluate(_route(), config)
        _assert_full_site(info.value)

    def test_find_clause_names_the_site(self):
        config = _broken_config()
        with pytest.raises(PolicyEvaluationError) as info:
            config.route_maps["BROKEN"].find_clause(_route(), config)
        _assert_full_site(info.value)


class TestPreparedPath:
    def test_prepared_evaluate_names_the_site(self):
        config = _broken_config()
        prepared = config.route_maps["BROKEN"].prepare(config)
        with pytest.raises(PolicyEvaluationError) as info:
            prepared.evaluate(_route())
        _assert_full_site(info.value)

    def test_prepared_find_clause_names_the_site(self):
        config = _broken_config()
        prepared = config.route_maps["BROKEN"].prepare(config)
        with pytest.raises(PolicyEvaluationError) as info:
            prepared.find_clause(_route())
        _assert_full_site(info.value)


class TestAnnotate:
    def test_first_annotation_wins(self):
        exc = PolicyEvaluationError("boom", kind="prefix-list", name="X")
        exc.annotate(router="R1", route_map="M")
        exc.annotate(router="R9", route_map="OTHER", clause_seq=30)
        assert exc.router == "R1"
        assert exc.route_map == "M"
        assert exc.clause_seq == 30  # was still missing: fillable
        assert str(exc) == "boom (router R1, route-map M, clause 30)"

    def test_bare_error_renders_plain_message(self):
        assert str(PolicyEvaluationError("boom")) == "boom"
