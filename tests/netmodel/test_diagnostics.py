"""ParseWarning round-trips through both vendor parsers.

The humanizer splices ``filename``/``line``/``text`` into Table 1's
syntax-error prompt formula, so both parsers must preserve them exactly
as the offending input had them — and :class:`ParseStatus` must move
PASSED → PARTIALLY_UNRECOGNIZED the moment the first warning lands.
"""

from repro.cisco import parse_cisco
from repro.juniper import parse_juniper
from repro.netmodel.diagnostics import Diagnostics, ParseStatus, ParseWarning


class TestDiagnosticsAccumulator:
    def test_fresh_accumulator_passes(self):
        assert Diagnostics().status is ParseStatus.PASSED

    def test_first_warning_flips_status(self):
        diagnostics = Diagnostics(filename="r1.cfg")
        diagnostics.warn(3, "  frobnicate  ", "This syntax is unrecognized")
        assert diagnostics.status is ParseStatus.PARTIALLY_UNRECOGNIZED

    def test_clear_returns_to_passed(self):
        diagnostics = Diagnostics()
        diagnostics.warn(1, "x", "bad")
        diagnostics.clear()
        assert not diagnostics.warnings
        assert diagnostics.status is ParseStatus.PASSED

    def test_warn_strips_text_and_keeps_location(self):
        diagnostics = Diagnostics(filename="r1.cfg")
        warning = diagnostics.warn(7, "  ip cef  \n", "unrecognized")
        assert warning == ParseWarning(
            filename="r1.cfg", line=7, text="ip cef", comment="unrecognized"
        )
        assert diagnostics.warnings == [warning]

    def test_render_names_file_and_line(self):
        warning = ParseWarning(
            filename="r1.cfg", line=7, text="ip cef", comment="unrecognized"
        )
        assert warning.render() == "[r1.cfg:7] unrecognized: 'ip cef'"

    def test_render_without_filename_falls_back_to_line(self):
        warning = ParseWarning(
            filename="", line=7, text="ip cef", comment="unrecognized"
        )
        assert warning.render() == "[line 7] unrecognized: 'ip cef'"


class TestCiscoRoundTrip:
    def test_clean_config_passes(self):
        result = parse_cisco("hostname R1\n", filename="R1.cfg")
        assert not result.warnings
        assert result.diagnostics.status is ParseStatus.PASSED

    def test_unrecognized_line_round_trips(self):
        # Line 1 is the hostname, line 2 a spacer, line 3 the offender.
        text = "hostname R1\n!\nfrobnicate the uplink\n"
        result = parse_cisco(text, filename="R1.cfg")
        assert result.diagnostics.status is ParseStatus.PARTIALLY_UNRECOGNIZED
        (warning,) = [
            item for item in result.warnings if "frobnicate" in item.text
        ]
        assert warning.filename == "R1.cfg"
        assert warning.line == 3
        assert warning.text == "frobnicate the uplink"
        assert warning.comment == "This syntax is unrecognized"

    def test_default_filename_round_trips(self):
        result = parse_cisco("frobnicate\n")
        assert result.warnings[0].filename == "<cisco>"

    def test_every_warning_carries_the_parse_filename(self):
        text = "interface\nrouter bgp banana\n"
        result = parse_cisco(text, filename="broken.cfg")
        assert result.warnings
        assert all(
            warning.filename == "broken.cfg" for warning in result.warnings
        )


class TestJuniperRoundTrip:
    def test_clean_config_passes(self):
        result = parse_juniper(
            "system { host-name r1; }", filename="r1.conf"
        )
        assert not result.warnings
        assert result.diagnostics.status is ParseStatus.PASSED

    def test_bad_prefix_range_round_trips(self):
        # The paper's Table 1 bug: GPT-4's invented 1.2.3.0/24-32 form.
        text = (
            "policy-options {\n"
            "  prefix-list PL {\n"
            "    1.2.3.0/24-32;\n"
            "  }\n"
            "}\n"
        )
        result = parse_juniper(text, filename="r1.conf")
        assert result.diagnostics.status is ParseStatus.PARTIALLY_UNRECOGNIZED
        (warning,) = result.warnings
        assert warning.filename == "r1.conf"
        assert warning.line == 3
        assert "1.2.3.0/24-32" in warning.text

    def test_default_filename_round_trips(self):
        text = "policy-options { prefix-list PL { 1.2.3.0/24-32; } }"
        result = parse_juniper(text)
        assert result.warnings[0].filename == "<juniper>"

    def test_status_transition_is_monotone_across_warnings(self):
        text = (
            "policy-options {\n"
            "  prefix-list PL {\n"
            "    1.2.3.0/24-32;\n"
            "    4.5.6.0/24-28;\n"
            "  }\n"
            "}\n"
        )
        result = parse_juniper(text, filename="r1.conf")
        assert len(result.warnings) == 2
        assert result.diagnostics.status is ParseStatus.PARTIALLY_UNRECOGNIZED
        assert [warning.line for warning in result.warnings] == [3, 4]
