"""Tests for prefix lists (including the paper's 'ge 24' semantics)."""

from hypothesis import given, strategies as st

from repro.netmodel.ip import Prefix, PrefixRange
from repro.netmodel.prefixlist import PrefixList, PrefixListEntry


def _exact(text):
    return PrefixRange.exact(Prefix.parse(text))


class TestPrefixList:
    def test_permit_exact(self):
        plist = PrefixList("p")
        plist.add("permit", _exact("1.2.3.0/24"))
        assert plist.permits(Prefix.parse("1.2.3.0/24"))
        assert not plist.permits(Prefix.parse("1.2.3.0/25"))

    def test_ge_24_matches_longer(self):
        """The paper's our-networks list: permit 1.2.3.0/24 ge 24."""
        plist = PrefixList("our-networks")
        plist.add("permit", PrefixRange.at_least(Prefix.parse("1.2.3.0/24"), 24))
        assert plist.permits(Prefix.parse("1.2.3.0/24"))
        assert plist.permits(Prefix.parse("1.2.3.0/25"))
        assert plist.permits(Prefix.parse("1.2.3.77/32"))
        assert not plist.permits(Prefix.parse("1.2.0.0/16"))

    def test_default_deny(self):
        plist = PrefixList("p")
        plist.add("permit", _exact("1.2.3.0/24"))
        assert not plist.permits(Prefix.parse("9.9.9.0/24"))

    def test_first_match_wins(self):
        plist = PrefixList("p")
        plist.add("deny", _exact("1.2.3.0/24"), seq=5)
        plist.add("permit", PrefixRange.orlonger(Prefix.parse("1.0.0.0/8")), seq=10)
        assert not plist.permits(Prefix.parse("1.2.3.0/24"))
        assert plist.permits(Prefix.parse("1.2.4.0/24"))

    def test_entries_sorted_by_seq(self):
        plist = PrefixList("p")
        plist.add("permit", _exact("2.0.0.0/8"), seq=10)
        plist.add("deny", _exact("1.0.0.0/8"), seq=5)
        assert [entry.seq for entry in plist.entries] == [5, 10]

    def test_auto_sequencing_by_fives(self):
        plist = PrefixList("p")
        first = plist.add("permit", _exact("1.0.0.0/8"))
        second = plist.add("permit", _exact("2.0.0.0/8"))
        assert (first.seq, second.seq) == (5, 10)

    def test_render_cisco_exact(self):
        entry = PrefixListEntry(5, "permit", _exact("1.2.3.0/24"))
        assert entry.render_cisco("p") == "ip prefix-list p seq 5 permit 1.2.3.0/24"

    def test_render_cisco_ge(self):
        entry = PrefixListEntry(
            5, "permit", PrefixRange.at_least(Prefix.parse("1.2.3.0/24"), 25)
        )
        assert "ge 25" in entry.render_cisco("p")

    def test_render_cisco_le(self):
        entry = PrefixListEntry(
            5, "permit", PrefixRange(Prefix.parse("10.0.0.0/8"), 8, 24)
        )
        rendered = entry.render_cisco("p")
        assert "le 24" in rendered
        assert "ge" not in rendered

    def test_render_cisco_orlonger_uses_le_32(self):
        entry = PrefixListEntry(
            5, "permit", PrefixRange.orlonger(Prefix.parse("10.0.0.0/8"))
        )
        assert "le 32" in entry.render_cisco("p")

    def test_permitted_ranges_excludes_denied(self):
        plist = PrefixList("p")
        plist.add("deny", _exact("1.2.3.0/24"), seq=5)
        plist.add(
            "permit", PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32), seq=10
        )
        ranges = plist.permitted_ranges()
        assert all(not r.matches(Prefix.parse("1.2.3.0/24")) for r in ranges)
        assert any(r.matches(Prefix.parse("1.2.3.0/25")) for r in ranges)


@st.composite
def entries(draw):
    action = draw(st.sampled_from(["permit", "deny"]))
    length = draw(st.integers(min_value=8, max_value=28))
    network = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    low = draw(st.integers(min_value=length, max_value=32))
    high = draw(st.integers(min_value=low, max_value=32))
    return (action, PrefixRange(Prefix(network, length), low, high))


@st.composite
def candidate_prefixes(draw):
    return Prefix(
        draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
        draw(st.integers(min_value=0, max_value=32)),
    )


class TestPrefixListProperties:
    @given(st.lists(entries(), min_size=1, max_size=5), candidate_prefixes())
    def test_permitted_ranges_agree_with_permits(self, items, candidate):
        """The symbolic permitted_ranges() must agree with concrete
        evaluation on every candidate."""
        plist = PrefixList("p")
        for action, prefix_range in items:
            plist.add(action, prefix_range)
        symbolic = any(
            r.matches(candidate) for r in plist.permitted_ranges()
        )
        assert symbolic == plist.permits(candidate)
