"""RouteBuilder and the interned route datapath (v2)."""

import copy
import pickle

import pytest

from repro.netmodel import (
    Community,
    Ipv4Address,
    Prefix,
    Protocol,
    Route,
    RouteBuilder,
    intern_communities,
    route_model,
    route_totals,
    set_route_model,
)
from repro.netmodel import Origin, RouterConfig, Vendor
from repro.netmodel.aspath import AsPath
from repro.netmodel.routing_policy import (
    Action,
    MatchProtocol,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunity,
    SetLocalPref,
    SetMed,
    SetNextHop,
)


def _route(**kwargs):
    return Route(prefix=Prefix.parse("1.2.3.0/24"), **kwargs)


class TestBuilderTransactions:
    def test_accumulates_and_freezes_once(self):
        builder = RouteBuilder(_route())
        builder.set_med(50)
        builder.set_local_pref(200)
        builder.prepend_as(7, 2)
        builder.add_community(Community(1, 1))
        builder.set_next_hop(Ipv4Address.parse("9.9.9.9"))
        frozen = builder.freeze()
        assert frozen.med == 50
        assert frozen.local_pref == 200
        assert frozen.as_path.asns == (7, 7)
        assert frozen.communities == {Community(1, 1)}
        assert frozen.next_hop == Ipv4Address.parse("9.9.9.9")

    def test_untouched_builder_freezes_to_the_base_object(self):
        route = _route()
        before = route_totals()["routes_reused"]
        assert RouteBuilder(route).freeze() is route
        assert route_totals()["routes_reused"] == before + 1

    def test_prepend_order_matches_with_as_prepended(self):
        builder = RouteBuilder(_route())
        builder.prepend_as(100)
        builder.prepend_as(200)
        assert builder.freeze().as_path.asns == (200, 100)
        assert _route().with_as_prepended(100).with_as_prepended(200).as_path.asns == (200, 100)

    def test_builder_duck_types_the_route_surface(self):
        builder = RouteBuilder(_route(communities=frozenset({Community(1, 1)})))
        assert builder.prefix == Prefix.parse("1.2.3.0/24")
        assert builder.communities == {Community(1, 1)}
        builder.add_community(Community(2, 2))
        assert builder.communities == {Community(1, 1), Community(2, 2)}
        builder.prepend_as(5)
        assert builder.as_path.asns == (5,)
        assert builder.path_contains(5)
        assert not builder.path_contains(6)

    def test_set_actions_apply_to_one_builder(self):
        builder = RouteBuilder(_route())
        for action in (
            SetMed(10),
            SetLocalPref(300),
            SetNextHop(Ipv4Address.parse("8.8.8.8")),
            SetAsPathPrepend(65000, 2),
            SetCommunity((Community(3, 3),), additive=True),
        ):
            action.apply_to(builder)
        frozen = builder.freeze()
        assert frozen.med == 10
        assert frozen.local_pref == 300
        assert frozen.as_path.asns == (65000, 65000)
        assert frozen.communities == {Community(3, 3)}

    def test_non_additive_set_community_replaces(self):
        builder = RouteBuilder(_route(communities=frozenset({Community(1, 1)})))
        SetCommunity((Community(2, 2), Community(3, 3))).apply_to(builder)
        assert builder.freeze().communities == {Community(2, 2), Community(3, 3)}

    def test_base_route_never_mutates(self):
        route = _route()
        builder = RouteBuilder(route)
        builder.set_med(99)
        builder.add_community(Community(9, 9))
        builder.freeze()
        assert route.med == 0
        assert route.communities == frozenset()

    def test_dirty_tracks_mutation(self):
        builder = RouteBuilder(_route())
        assert not builder.dirty
        builder.set_med(1)
        assert builder.dirty

    def test_set_origin(self):
        builder = RouteBuilder(_route())
        builder.set_origin(Origin.INCOMPLETE)
        assert builder.freeze().origin is Origin.INCOMPLETE


def _tagging_map():
    route_map = RouteMap("TAG")
    deny = RouteMapClause(seq=10, action=Action.DENY)
    deny.matches.append(MatchProtocol(Protocol.OSPF))
    route_map.add_clause(deny)
    permit = RouteMapClause(seq=20, action=Action.PERMIT)
    permit.sets.append(SetCommunity((Community(7, 7),), additive=True))
    route_map.add_clause(permit)
    return route_map


class TestTransactionalApply:
    """RouteMap.apply / PreparedRouteMap.apply: the builder-level form
    of evaluate — identical dispositions, mutations only on permit."""

    def test_apply_matches_evaluate(self):
        config = RouterConfig(hostname="r", vendor=Vendor.CISCO)
        route_map = _tagging_map()
        for route in (_route(), _route(protocol=Protocol.OSPF)):
            expected = route_map.evaluate(route, config)
            builder = RouteBuilder(route)
            action = route_map.apply(builder, config)
            assert action is expected.action
            assert builder.freeze() == expected.route
            prepared_builder = RouteBuilder(route)
            prepared_action = route_map.prepare(config).apply(prepared_builder)
            assert prepared_action is expected.action
            assert prepared_builder.freeze() == expected.route

    def test_deny_leaves_builder_clean(self):
        config = RouterConfig(hostname="r", vendor=Vendor.CISCO)
        builder = RouteBuilder(_route(protocol=Protocol.OSPF))
        assert _tagging_map().apply(builder, config) is Action.DENY
        assert not builder.dirty

    def test_implicit_deny_on_empty_map(self):
        config = RouterConfig(hostname="r", vendor=Vendor.CISCO)
        builder = RouteBuilder(_route())
        assert RouteMap("EMPTY").apply(builder, config) is Action.DENY
        assert RouteMap("EMPTY").prepare(config).apply(builder) is Action.DENY
        assert not builder.dirty


class TestRouteSerialization:
    def test_route_round_trips_through_pickle(self):
        route = _route(
            communities=frozenset({Community(1, 1)})
        ).with_as_prepended(9).with_med(4)
        clone = pickle.loads(pickle.dumps(route))
        assert clone == route
        assert hash(clone) == hash(route)
        # Unpickling re-interns onto this process's flyweights.
        assert clone.as_path is route.as_path
        assert clone.communities is route.communities

    def test_copy_returns_the_same_immutable_value(self):
        route = _route().with_med(3)
        assert copy.copy(route) is route
        assert copy.deepcopy({"r": route})["r"] is route


class TestInterningInvariants:
    def test_same_value_routes_share_as_path_instances(self):
        one = _route().with_as_prepended(1).with_as_prepended(2)
        two = _route().with_as_prepended(1).with_as_prepended(2)
        assert one.as_path is two.as_path

    def test_same_value_routes_share_community_instances(self):
        members = frozenset({Community(1, 1), Community(2, 2)})
        one = _route(communities=frozenset(members))
        two = _route(communities=set(members))
        assert one.communities is two.communities

    def test_intern_communities_is_value_keyed(self):
        a = intern_communities(frozenset({Community(5, 5)}))
        b = intern_communities({Community(5, 5)})
        assert a is b
        assert intern_communities(()) is intern_communities(frozenset())

    def test_as_path_of_interns(self):
        assert AsPath.of((1, 2)) is AsPath.of((1, 2))
        assert AsPath.of((1, 2)) == AsPath((1, 2))

    def test_empty_as_path_is_shared(self):
        assert _route().as_path is _route().as_path

    def test_route_is_immutable(self):
        route = _route()
        with pytest.raises(AttributeError):
            route.med = 5

    def test_route_hash_and_equality_are_structural(self):
        assert _route() == _route()
        assert hash(_route()) == hash(_route())
        assert _route().with_med(1) != _route()


class TestRouteModelToggle:
    def test_default_is_v2(self):
        assert route_model() == "v2"

    def test_rejects_unknown_models(self):
        with pytest.raises(ValueError):
            set_route_model("v3")

    def test_v1_and_v2_shims_agree(self):
        try:
            set_route_model("v1")
            v1 = _route().with_med(9).with_as_prepended(4).with_community_added(
                Community(1, 1)
            )
        finally:
            set_route_model("v2")
        v2 = _route().with_med(9).with_as_prepended(4).with_community_added(
            Community(1, 1)
        )
        assert v1 == v2
        assert hash(v1) == hash(v2)
