"""Tests for the immutable Route value."""

from repro.netmodel import (
    Community,
    Ipv4Address,
    Prefix,
    Protocol,
    Route,
)


def _route(**kwargs):
    return Route(prefix=Prefix.parse("1.2.3.0/24"), **kwargs)


class TestRouteTransforms:
    def test_default_local_pref(self):
        assert _route().local_pref == 100

    def test_default_protocol_is_bgp(self):
        assert _route().protocol is Protocol.BGP

    def test_with_community_added_is_additive(self):
        route = _route(communities=frozenset({Community(1, 1)}))
        updated = route.with_community_added(Community(2, 2))
        assert updated.communities == {Community(1, 1), Community(2, 2)}

    def test_with_communities_replaced_drops_existing(self):
        route = _route(communities=frozenset({Community(1, 1)}))
        updated = route.with_communities_replaced(Community(2, 2))
        assert updated.communities == {Community(2, 2)}

    def test_original_unchanged_by_transforms(self):
        route = _route()
        route.with_med(99)
        assert route.med == 0

    def test_with_med(self):
        assert _route().with_med(50).med == 50

    def test_with_local_pref(self):
        assert _route().with_local_pref(200).local_pref == 200

    def test_with_next_hop(self):
        hop = Ipv4Address.parse("9.9.9.9")
        assert _route().with_next_hop(hop).next_hop == hop

    def test_with_as_prepended(self):
        route = _route().with_as_prepended(100).with_as_prepended(200)
        assert route.as_path.asns == (200, 100)

    def test_with_as_prepended_count(self):
        assert _route().with_as_prepended(7, count=2).as_path.asns == (7, 7)

    def test_with_protocol(self):
        assert _route().with_protocol(Protocol.OSPF).protocol is Protocol.OSPF

    def test_describe_mentions_prefix_and_communities(self):
        route = _route(communities=frozenset({Community(100, 1)}))
        text = route.describe()
        assert "1.2.3.0/24" in text
        assert "100:1" in text

    def test_describe_empty_communities(self):
        assert "{}" in _route().describe()

    def test_equality_is_structural(self):
        assert _route() == _route()
        assert _route().with_med(1) != _route()
