"""Tests for IPv4 addressing primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.ip import (
    AddressError,
    Ipv4Address,
    Prefix,
    PrefixRange,
    summarize_ranges,
)

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
lengths = st.integers(min_value=0, max_value=32)


class TestIpv4Address:
    def test_parse_dotted_quad(self):
        assert Ipv4Address.parse("10.0.0.1").value == (10 << 24) | 1

    def test_str_roundtrip(self):
        assert str(Ipv4Address.parse("192.168.3.44")) == "192.168.3.44"

    def test_zero_address(self):
        assert str(Ipv4Address(0)) == "0.0.0.0"

    def test_broadcast_address(self):
        assert str(Ipv4Address(0xFFFFFFFF)) == "255.255.255.255"

    def test_rejects_octet_out_of_range(self):
        with pytest.raises(AddressError):
            Ipv4Address.parse("256.0.0.1")

    def test_rejects_malformed(self):
        with pytest.raises(AddressError):
            Ipv4Address.parse("10.0.0")

    def test_rejects_garbage(self):
        with pytest.raises(AddressError):
            Ipv4Address.parse("not-an-ip")

    def test_rejects_value_out_of_range(self):
        with pytest.raises(AddressError):
            Ipv4Address(1 << 32)

    def test_ordering(self):
        assert Ipv4Address.parse("1.0.0.1") < Ipv4Address.parse("2.0.0.1")

    @given(addresses)
    def test_parse_str_roundtrip(self, value):
        address = Ipv4Address(value)
        assert Ipv4Address.parse(str(address)) == address


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("1.2.3.0/24")
        assert prefix.length == 24
        assert str(prefix) == "1.2.3.0/24"

    def test_canonicalizes_host_bits(self):
        assert str(Prefix.parse("1.2.3.44/24")) == "1.2.3.0/24"

    def test_zero_length(self):
        assert str(Prefix.parse("1.2.3.4/0")) == "0.0.0.0/0"

    def test_host_prefix(self):
        assert str(Prefix.parse("1.1.1.1/32")) == "1.1.1.1/32"

    def test_rejects_missing_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.2.3.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.2.3.0/33")

    def test_rejects_non_numeric_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.2.3.0/abc")

    def test_from_address_mask(self):
        prefix = Prefix.from_address_mask("10.0.1.5", "255.255.255.0")
        assert str(prefix) == "10.0.1.0/24"

    def test_from_address_mask_host(self):
        prefix = Prefix.from_address_mask("1.1.1.1", "255.255.255.255")
        assert str(prefix) == "1.1.1.1/32"

    def test_rejects_non_contiguous_mask(self):
        with pytest.raises(AddressError):
            Prefix.from_address_mask("10.0.0.0", "255.0.255.0")

    def test_mask_string(self):
        assert Prefix.parse("10.0.0.0/8").mask_string() == "255.0.0.0"

    def test_wildcard_string(self):
        assert Prefix.parse("1.2.3.0/24").wildcard_string() == "0.0.0.255"

    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_does_not_contain_shorter(self):
        assert not Prefix.parse("10.0.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/16"))

    def test_contains_address(self):
        prefix = Prefix.parse("1.2.3.0/24")
        assert prefix.contains_address(Ipv4Address.parse("1.2.3.200"))
        assert not prefix.contains_address(Ipv4Address.parse("1.2.4.1"))

    def test_overlaps_symmetric(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)

    def test_no_overlap(self):
        assert not Prefix.parse("10.0.0.0/8").overlaps(Prefix.parse("11.0.0.0/8"))

    def test_subprefixes(self):
        subs = list(Prefix.parse("1.2.3.0/24").subprefixes(26))
        assert [str(p) for p in subs] == [
            "1.2.3.0/26",
            "1.2.3.64/26",
            "1.2.3.128/26",
            "1.2.3.192/26",
        ]

    def test_subprefixes_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("1.2.3.0/24").subprefixes(20))

    def test_first_last_value(self):
        prefix = Prefix.parse("1.2.3.0/24")
        assert prefix.last_value - prefix.first_value == 255

    @given(addresses, lengths)
    def test_canonical_network_has_no_host_bits(self, value, length):
        prefix = Prefix(value, length)
        rebuilt = Prefix(prefix.network, length)
        assert rebuilt == prefix

    @given(addresses, lengths)
    def test_parse_str_roundtrip(self, value, length):
        prefix = Prefix(value, length)
        assert Prefix.parse(str(prefix)) == prefix


class TestPrefixRange:
    def test_exact(self):
        r = PrefixRange.exact(Prefix.parse("1.2.3.0/24"))
        assert r.is_exact()
        assert r.matches(Prefix.parse("1.2.3.0/24"))
        assert not r.matches(Prefix.parse("1.2.3.0/25"))

    def test_at_least_is_cisco_ge(self):
        r = PrefixRange.at_least(Prefix.parse("1.2.3.0/24"), 24)
        assert r.matches(Prefix.parse("1.2.3.0/24"))
        assert r.matches(Prefix.parse("1.2.3.128/25"))
        assert r.matches(Prefix.parse("1.2.3.7/32"))
        assert not r.matches(Prefix.parse("1.2.0.0/16"))

    def test_orlonger(self):
        r = PrefixRange.orlonger(Prefix.parse("10.0.0.0/8"))
        assert r.matches(Prefix.parse("10.1.2.0/24"))

    def test_invalid_band_rejected(self):
        with pytest.raises(AddressError):
            PrefixRange(Prefix.parse("1.2.3.0/24"), 23, 32)

    def test_inverted_band_rejected(self):
        with pytest.raises(AddressError):
            PrefixRange(Prefix.parse("1.2.3.0/24"), 30, 28)

    def test_matches_respects_cone(self):
        r = PrefixRange(Prefix.parse("1.2.3.0/24"), 25, 30)
        assert r.matches(Prefix.parse("1.2.3.0/25"))
        assert not r.matches(Prefix.parse("1.2.4.0/25"))
        assert not r.matches(Prefix.parse("1.2.3.0/24"))
        assert not r.matches(Prefix.parse("1.2.3.0/31"))

    def test_intersect_same_base(self):
        base = Prefix.parse("1.2.3.0/24")
        left = PrefixRange(base, 24, 28)
        right = PrefixRange(base, 26, 32)
        common = left.intersect(right)
        assert common == PrefixRange(base, 26, 28)

    def test_intersect_nested_bases(self):
        outer = PrefixRange(Prefix.parse("10.0.0.0/8"), 8, 32)
        inner = PrefixRange(Prefix.parse("10.5.0.0/16"), 16, 24)
        common = outer.intersect(inner)
        assert common == inner

    def test_intersect_disjoint_is_none(self):
        left = PrefixRange.exact(Prefix.parse("10.0.0.0/8"))
        right = PrefixRange.exact(Prefix.parse("11.0.0.0/8"))
        assert left.intersect(right) is None

    def test_intersect_empty_band_is_none(self):
        base = Prefix.parse("1.2.3.0/24")
        left = PrefixRange(base, 24, 25)
        right = PrefixRange(base, 27, 32)
        assert left.intersect(right) is None

    def test_example_lies_in_range(self):
        r = PrefixRange(Prefix.parse("1.2.3.0/24"), 25, 30)
        assert r.matches(r.example())

    def test_subtract_disjoint_returns_self(self):
        left = PrefixRange.exact(Prefix.parse("10.0.0.0/8"))
        right = PrefixRange.exact(Prefix.parse("11.0.0.0/8"))
        assert left.subtract(right) == [left]

    def test_subtract_band(self):
        base = Prefix.parse("1.2.3.0/24")
        left = PrefixRange(base, 24, 32)
        right = PrefixRange(base, 26, 28)
        pieces = left.subtract(right)
        assert PrefixRange(base, 24, 25) in pieces
        assert PrefixRange(base, 29, 32) in pieces

    def test_subtract_self_is_empty(self):
        r = PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32)
        assert r.subtract(r) == []

    def test_subtract_inner_cone_leaves_siblings(self):
        outer = PrefixRange(Prefix.parse("1.2.2.0/23"), 24, 24)
        inner = PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 24)
        pieces = outer.subtract(inner)
        # /24s under 1.2.2.0/23 other than 1.2.3.0/24: just 1.2.2.0/24.
        matched = [p for p in pieces if p.matches(Prefix.parse("1.2.2.0/24"))]
        assert matched
        assert all(not p.matches(Prefix.parse("1.2.3.0/24")) for p in pieces)

    def test_str_exact(self):
        assert str(PrefixRange.exact(Prefix.parse("1.2.3.0/24"))) == "1.2.3.0/24"

    def test_str_banded(self):
        r = PrefixRange(Prefix.parse("1.2.3.0/24"), 25, 32)
        assert str(r) == "1.2.3.0/24 ge 25 le 32"

    def test_summarize_ranges(self):
        items = [
            PrefixRange.exact(Prefix.parse("2.0.0.0/8")),
            PrefixRange.exact(Prefix.parse("1.0.0.0/8")),
        ]
        assert summarize_ranges(items) == "1.0.0.0/8, 2.0.0.0/8"


# Hypothesis strategies building consistent ranges.
@st.composite
def prefix_ranges(draw):
    length = draw(st.integers(min_value=0, max_value=28))
    network = draw(addresses)
    base = Prefix(network, length)
    low = draw(st.integers(min_value=length, max_value=32))
    high = draw(st.integers(min_value=low, max_value=32))
    return PrefixRange(base, low, high)


@st.composite
def prefixes(draw):
    return Prefix(draw(addresses), draw(lengths))


class TestPrefixRangeProperties:
    @given(prefix_ranges(), prefix_ranges(), prefixes())
    def test_subtract_semantics(self, left, right, candidate):
        """x in (left - right) iff x in left and x not in right."""
        pieces = left.subtract(right)
        in_difference = any(piece.matches(candidate) for piece in pieces)
        expected = left.matches(candidate) and not right.matches(candidate)
        assert in_difference == expected

    @given(prefix_ranges(), prefix_ranges(), prefixes())
    def test_intersect_semantics(self, left, right, candidate):
        """x in (left ∩ right) iff x in both."""
        common = left.intersect(right)
        in_common = common is not None and common.matches(candidate)
        expected = left.matches(candidate) and right.matches(candidate)
        assert in_common == expected

    @given(prefix_ranges())
    def test_example_is_member(self, item):
        assert item.matches(item.example())
