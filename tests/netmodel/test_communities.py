"""Tests for BGP communities and community lists."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.communities import (
    Community,
    CommunityError,
    CommunityList,
    CommunityListEntry,
)


class TestCommunity:
    def test_parse(self):
        assert Community.parse("100:1") == Community(100, 1)

    def test_str(self):
        assert str(Community(65000, 42)) == "65000:42"

    def test_rejects_missing_colon(self):
        with pytest.raises(CommunityError):
            Community.parse("1001")

    def test_rejects_negative(self):
        with pytest.raises(CommunityError):
            Community.parse("-1:1")

    def test_rejects_asn_overflow(self):
        with pytest.raises(CommunityError):
            Community(70000, 1)

    def test_rejects_value_overflow(self):
        with pytest.raises(CommunityError):
            Community(100, 70000)

    def test_ordering(self):
        assert Community(100, 1) < Community(101, 1)

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_parse_str_roundtrip(self, asn, value):
        community = Community(asn, value)
        assert Community.parse(str(community)) == community


class TestCommunityListEntry:
    def test_single_community_match(self):
        entry = CommunityListEntry("permit", (Community(100, 1),))
        assert entry.matches(frozenset({Community(100, 1)}))

    def test_single_community_no_match(self):
        entry = CommunityListEntry("permit", (Community(100, 1),))
        assert not entry.matches(frozenset({Community(101, 1)}))

    def test_multi_community_requires_all(self):
        entry = CommunityListEntry(
            "permit", (Community(100, 1), Community(101, 1))
        )
        assert not entry.matches(frozenset({Community(100, 1)}))
        assert entry.matches(frozenset({Community(100, 1), Community(101, 1)}))

    def test_regex_entry(self):
        entry = CommunityListEntry("permit", regex=r"^100:")
        assert entry.matches(frozenset({Community(100, 7)}))
        assert not entry.matches(frozenset({Community(200, 7)}))

    def test_rejects_bad_action(self):
        with pytest.raises(CommunityError):
            CommunityListEntry("allow", (Community(100, 1),))

    def test_rejects_empty_entry(self):
        with pytest.raises(CommunityError):
            CommunityListEntry("permit")


class TestCommunityList:
    def test_first_match_wins(self):
        clist = CommunityList("test")
        clist.add(CommunityListEntry("deny", (Community(100, 1),)))
        clist.add(CommunityListEntry("permit", (Community(100, 1),)))
        assert not clist.permits([Community(100, 1)])

    def test_default_deny(self):
        clist = CommunityList("test")
        clist.add(CommunityListEntry("permit", (Community(100, 1),)))
        assert not clist.permits([Community(200, 5)])

    def test_empty_list_denies(self):
        assert not CommunityList("empty").permits([Community(100, 1)])

    def test_permit_with_extra_communities(self):
        clist = CommunityList("test")
        clist.add(CommunityListEntry("permit", (Community(100, 1),)))
        assert clist.permits([Community(100, 1), Community(999, 9)])

    def test_permitted_communities_collects_permits_only(self):
        clist = CommunityList("test")
        clist.add(CommunityListEntry("deny", (Community(1, 1),)))
        clist.add(CommunityListEntry("permit", (Community(100, 1),)))
        assert clist.permitted_communities() == frozenset({Community(100, 1)})
