"""Streaming journal + resume: interrupted grids converge byte-for-byte.

The engine's core guarantee: a campaign interrupted mid-grid and
resumed from its journal produces final JSON/CSV summaries
byte-identical to an uninterrupted run, at any worker count.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.campaign import (
    CompletedScenario,
    build_grid,
    execute_scenario,
    fold_journal,
    run_campaign,
    Scenario,
)

GRID_ARGS = dict(families=["chain", "star"], sizes=[4], seeds=2)


def _grid():
    return build_grid(**GRID_ARGS)


def _artifacts(summary, tmp_path, stem):
    json_path = summary.write_json(tmp_path / f"{stem}.json")
    csv_path = summary.write_csv(tmp_path / f"{stem}.csv")
    return json_path.read_bytes(), csv_path.read_bytes()


class TestJournal:
    def test_journal_streams_one_line_per_scenario(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        lines = journal.read_text().splitlines()
        assert len(lines) == len(_grid()) + 1  # header + one per scenario
        header = json.loads(lines[0])
        assert header["kind"] == "campaign"
        assert header["scenarios"] == len(_grid())
        assert not summary.incomplete

    def test_fold_reconstructs_rows(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        folded = fold_journal(journal)
        assert set(folded) == {scenario.key() for scenario in _grid()}
        assert [folded[s.key()].row for s in _grid()] == summary.rows

    def test_fold_tolerates_truncated_and_garbage_lines(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal)
        with journal.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "result", "key": "chain:4:0:d')  # truncated
        folded = fold_journal(journal)
        assert set(folded) == {scenario.key() for scenario in _grid()}

    def test_fold_missing_file_is_empty(self, tmp_path):
        assert fold_journal(tmp_path / "nope.jsonl") == {}

    def test_fold_tolerates_non_numeric_cache_fields(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal)
        lines = journal.read_text().splitlines()
        record = json.loads(lines[-1])
        record["cache_hits"] = None
        record["cache_misses"] = "garbage"
        with journal.open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        folded = fold_journal(journal)
        # null coerces to 0; the unparseable record is skipped, keeping
        # the earlier good record for that key.
        assert folded[record["key"]].row.family == record["row"]["family"]

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal_path"):
            run_campaign(_grid(), resume=True)

    def test_fresh_run_refuses_to_truncate_populated_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal, limit=2)
        with pytest.raises(ValueError, match="already holds results"):
            run_campaign(_grid(), workers=1, journal_path=journal)
        # Still resumable afterwards — nothing was truncated.
        summary = run_campaign(
            _grid(), workers=1, journal_path=journal, resume=True
        )
        assert not summary.incomplete

    def test_fresh_run_overwrites_journal_of_a_different_grid(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        other = build_grid(["mesh"], [4], seeds=1)
        run_campaign(other, workers=1, journal_path=journal)
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        assert not summary.incomplete
        assert set(fold_journal(journal)) == {
            scenario.key() for scenario in _grid()
        }

    def test_limit_stops_midway_and_reports_incomplete(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        summary = run_campaign(
            _grid(), workers=1, journal_path=journal, limit=2
        )
        assert len(summary.rows) == 2
        assert summary.incomplete
        assert summary.total == len(_grid())


class TestResumeDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("baseline")
        summary = run_campaign(
            _grid(), workers=1, journal_path=tmp_path / "full.jsonl"
        )
        return _artifacts(summary, tmp_path, "full")

    @pytest.mark.parametrize("workers", [1, 4])
    def test_kill_and_resume_matches_uninterrupted(
        self, baseline, tmp_path, workers
    ):
        journal = tmp_path / "partial.jsonl"
        partial = run_campaign(
            _grid(), workers=workers, journal_path=journal, limit=2
        )
        assert partial.incomplete
        resumed = run_campaign(
            _grid(), workers=workers, journal_path=journal, resume=True
        )
        assert not resumed.incomplete
        assert resumed.resumed == 2
        assert _artifacts(resumed, tmp_path, "resumed") == baseline

    def test_worker_count_does_not_change_artifacts(self, baseline, tmp_path):
        summary = run_campaign(
            _grid(), workers=4, journal_path=tmp_path / "par.jsonl"
        )
        assert _artifacts(summary, tmp_path, "par") == baseline

    def test_resume_of_complete_journal_reruns_nothing(
        self, baseline, tmp_path
    ):
        journal = tmp_path / "full.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal)
        before = journal.read_text()
        resumed = run_campaign(
            _grid(), workers=1, journal_path=journal, resume=True
        )
        assert journal.read_text() == before  # nothing re-executed
        assert resumed.resumed == len(_grid())
        assert _artifacts(resumed, tmp_path, "noop") == baseline

    def test_journalless_run_matches_journaled(self, baseline, tmp_path):
        summary = run_campaign(_grid(), workers=1)
        assert _artifacts(summary, tmp_path, "memonly") == baseline

    @pytest.mark.parametrize("resume_workers", [1, 4])
    def test_crash_truncated_final_line_then_resume_other_worker_count(
        self, baseline, tmp_path, resume_workers
    ):
        """A crash mid-write leaves the journal's final line truncated;
        resuming — with a *different* worker count than wrote it — must
        re-run the mangled scenario and still match the uninterrupted
        artifacts byte for byte."""
        journal = tmp_path / "trunc.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal, limit=3)
        text = journal.read_text()
        assert text.endswith("\n")
        complete_lines = text.splitlines()
        assert len(complete_lines) == 4  # header + three results
        # Chop the final record mid-JSON, no trailing newline: exactly
        # what a SIGKILL between write() and flush boundaries leaves.
        journal.write_text(text[: -(len(complete_lines[-1]) // 2 + 1)])
        assert not journal.read_text().endswith("\n")
        folded = fold_journal(journal)
        assert len(folded) == 2  # the truncated record does not fold
        resumed = run_campaign(
            _grid(), workers=resume_workers, journal_path=journal, resume=True
        )
        assert not resumed.incomplete
        assert resumed.resumed == 2  # the truncated scenario re-ran
        assert _artifacts(resumed, tmp_path, "trunc") == baseline
        # The repaired journal is clean: every line folds, latest wins.
        assert len(fold_journal(journal)) == len(_grid())


class TestKillProcessAndResume:
    """A real mid-campaign SIGKILL: the journal survives, resume finishes.

    Timing-independent by construction — wherever the kill lands (before,
    during, or after the grid) the resumed artifacts must equal an
    uninterrupted run's.
    """

    ARGS = [
        "--families", "chain,star", "--sizes", "4,5", "--seeds", "2",
        "--workers", "1",
    ]

    @staticmethod
    def _cli(*extra):
        return [sys.executable, "-m", "repro", "campaign",
                *TestKillProcessAndResume.ARGS, *extra]

    @staticmethod
    def _env():
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return env

    def test_sigkill_then_resume(self, tmp_path):
        journal = tmp_path / "kill.jsonl"
        process = subprocess.Popen(
            self._cli(
                "--journal", str(journal),
                "--json", str(tmp_path / "ignored.json"),
            ),
            cwd=tmp_path,
            env=self._env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(0.7)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait()

        resume = subprocess.run(
            self._cli(
                "--resume", str(journal),
                "--json", str(tmp_path / "resumed.json"),
            ),
            cwd=tmp_path,
            env=self._env(),
            capture_output=True,
            text=True,
        )
        assert resume.returncode == 0, resume.stderr

        clean = subprocess.run(
            self._cli(
                "--journal", str(tmp_path / "clean.jsonl"),
                "--json", str(tmp_path / "clean.json"),
            ),
            cwd=tmp_path,
            env=self._env(),
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stderr
        assert (tmp_path / "resumed.json").read_bytes() == (
            tmp_path / "clean.json"
        ).read_bytes()


class TestExecuteScenario:
    def test_records_key_and_cache_traffic(self):
        scenario = Scenario(family="ring", size=4, seed=0)
        record = execute_scenario(scenario)
        assert isinstance(record, CompletedScenario)
        assert record.key == scenario.key()
        assert record.row.verified
        assert record.cache_hits >= 0 and record.cache_misses >= 0

    def test_summary_aggregates_cache_traffic(self, tmp_path):
        summary = run_campaign(_grid(), workers=1)
        assert summary.cache_hits + summary.cache_misses > 0
        assert summary.cache_hit_rate is not None
        assert 0.0 <= summary.cache_hit_rate <= 1.0


class TestErrorTraces:
    """v5 journals carry the full traceback of an error row; summary
    artifacts (JSON/CSV) stay traceback-free, and folding tolerates
    rows journaled before the field existed."""

    BAD = Scenario(family="no-such-family", size=4, seed=0)

    def test_error_row_captures_traceback(self):
        from repro.experiments.campaign import run_scenario

        row = run_scenario(self.BAD)
        assert row.error is not None
        assert row.trace is not None
        assert "Traceback (most recent call last)" in row.trace
        # The trace ends with the same exception the error column names.
        assert row.error.split(":")[0] in row.trace

    def test_successful_row_has_no_trace(self):
        from repro.experiments.campaign import run_scenario

        row = run_scenario(Scenario(family="star", size=4, seed=0))
        assert row.error is None
        assert row.trace is None

    def test_trace_survives_the_journal_roundtrip(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        run_campaign([self.BAD], journal_path=journal)
        folded = fold_journal(journal)
        (record,) = folded.values()
        assert record.row.trace is not None
        assert "Traceback" in record.row.trace

    def test_fold_tolerates_pre_v5_rows_without_trace(self, tmp_path):
        """A v4 journal row (no ``trace`` key) folds cleanly with the
        field defaulting to None — and unknown future fields drop."""
        journal = tmp_path / "old.jsonl"
        run_campaign([Scenario(family="star", size=4, seed=0)],
                     journal_path=journal)
        lines = journal.read_text().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("kind") == "result":
                record["row"].pop("trace", None)
                record["row"]["from_the_future"] = 42
            doctored.append(json.dumps(record))
        journal.write_text("\n".join(doctored) + "\n")
        folded = fold_journal(journal)
        (record,) = folded.values()
        assert record.row.trace is None
        assert record.row.family == "star"

    def test_summary_artifacts_exclude_traces(self, tmp_path):
        from repro.experiments.campaign import run_campaign as run

        summary = run([self.BAD])
        data = summary.to_dict()
        assert all("trace" not in row for row in data["rows"])
        csv_path = summary.write_csv(tmp_path / "rows.csv")
        header = csv_path.read_text().splitlines()[0]
        assert "trace" not in header
