"""The parallel scenario-campaign engine."""

import csv
import json

import pytest

from repro.experiments.campaign import (
    PROFILES,
    Scenario,
    build_grid,
    run_campaign,
    run_scenario,
    scenario_seed,
)
from repro.experiments.no_transit import run_no_transit_experiment


def _row_key(row):
    return (
        row.family, row.size, row.seed, row.profile, row.iips,
        row.automated_prompts, row.human_prompts, row.leverage,
        row.verified, row.global_ok, row.error,
    )


class TestGrid:
    def test_grid_enumeration(self):
        grid = build_grid(["star", "chain"], [4, 6], seeds=2)
        assert len(grid) == 8
        assert grid[0] == Scenario(family="star", size=4, seed=0)
        assert len(set(grid)) == len(grid)

    def test_iip_ablation_doubles_the_grid(self):
        grid = build_grid(["chain"], [4], seeds=1, iip_ablation=True)
        assert [scenario.iips for scenario in grid] == [True, False]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            build_grid(["torus"], [4], seeds=1)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            build_grid(["star"], [4], seeds=1, profiles=["perfect"])

    def test_scenario_seed_is_stable_and_distinct(self):
        a = Scenario(family="chain", size=5, seed=0)
        b = Scenario(family="chain", size=5, seed=1)
        assert scenario_seed(a) == scenario_seed(a)
        assert scenario_seed(a) != scenario_seed(b)


class TestRunScenario:
    def test_runs_the_full_loop(self):
        row = run_scenario(Scenario(family="ring", size=4, seed=0))
        assert row.error is None
        assert row.verified and row.global_ok
        assert row.automated_prompts > 0
        assert row.duration_s > 0

    def test_deterministic(self):
        scenario = Scenario(family="mesh", size=5, seed=1)
        assert _row_key(run_scenario(scenario)) == _row_key(
            run_scenario(scenario)
        )

    def test_matches_direct_experiment(self):
        scenario = Scenario(family="chain", size=4, seed=0)
        row = run_scenario(scenario)
        experiment = run_no_transit_experiment(
            router_count=4,
            seed=scenario_seed(scenario),
            profile=PROFILES["default"],
            family="chain",
        )
        assert row.automated_prompts == experiment.automated_prompts
        assert row.human_prompts == experiment.human_prompts
        assert row.verified == experiment.result.verified

    def test_error_row_instead_of_raising(self):
        row = run_scenario(Scenario(family="chain", size=999, seed=0))
        assert row.error is not None
        assert not row.verified


class TestRunCampaign:
    def test_serial_campaign(self):
        grid = build_grid(["star", "dumbbell"], [4], seeds=1)
        summary = run_campaign(grid, workers=1)
        assert len(summary.rows) == 2
        assert not summary.errors
        assert all(row.verified for row in summary.rows)

    def test_parallel_matches_serial(self):
        grid = build_grid(["chain", "ring"], [4, 5], seeds=1)
        serial = run_campaign(grid, workers=1)
        parallel = run_campaign(grid, workers=2)
        assert [_row_key(row) for row in serial.rows] == [
            _row_key(row) for row in parallel.rows
        ]
        assert parallel.workers == 2

    def test_family_aggregates(self):
        grid = build_grid(["chain"], [4, 5], seeds=1)
        summary = run_campaign(grid, workers=1)
        (aggregate,) = summary.by_family()
        assert aggregate.family == "chain"
        assert aggregate.scenarios == 2
        assert aggregate.verified == 2
        assert aggregate.verified_rate == 1.0

    def test_render_lists_rows_and_aggregates(self):
        summary = run_campaign(build_grid(["mesh"], [4], seeds=1))
        text = summary.render()
        assert "mesh" in text and "campaign:" in text


class TestOutputs:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_campaign(
            build_grid(["star", "chain"], [4], seeds=1), workers=1
        )

    def test_json_summary(self, summary, tmp_path):
        path = summary.write_json(tmp_path / "campaign.json")
        data = json.loads(path.read_text())
        assert data["scenarios"] == 2
        assert set(data["families"]) == {"star", "chain"}
        assert len(data["rows"]) == 2
        row = data["rows"][0]
        assert {"family", "size", "seed", "verified", "leverage"} <= set(row)

    def test_csv_rows(self, summary, tmp_path):
        path = summary.write_csv(tmp_path / "campaign.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["family"] == "star"
        assert rows[0]["verified"] == "True"
