"""Tests for the extension experiments (incremental policy, IIP
ablation) and the CLI."""

import pytest

from repro.experiments import (
    run_iip_ablation,
    run_incremental_policy_experiment,
)


class TestIncrementalPolicy:
    def test_interference_caught_and_repaired(self):
        result = run_incremental_policy_experiment(seed=0)
        assert result.verified
        assert result.interference_caught
        assert result.prompt_log.automated >= 2

    def test_interference_finding_is_old_invariant(self):
        result = run_incremental_policy_experiment(seed=0)
        messages = [finding.message for finding in result.findings]
        assert any(
            "permits routes that have the community" in message
            for message in messages
        )
        assert any("must be prepended" in message for message in messages)

    def test_negative_control_ships_broken(self):
        """Without re-verifying the old invariants, the interference is
        invisible to the loop and no-transit ships broken."""
        control = run_incremental_policy_experiment(
            seed=0, recheck_old_invariants=False
        )
        assert not control.verified
        assert not control.interference_caught

    def test_render(self):
        result = run_incremental_policy_experiment(seed=0)
        assert "caught and repaired" in result.render()

    def test_global_check_resimulates_incrementally(self):
        """The final global check converges the verified star once and
        re-simulates only the edited hub's dependency cone."""
        result = run_incremental_policy_experiment(seed=0)
        assert result.global_check is not None
        assert result.global_check.holds
        assert result.global_sim is not None
        assert result.global_sim.incremental
        assert result.global_sim.dirty_routers == 1  # only R1 changed
        assert result.global_sim.reused_entries > 0
        assert "global no-transit holds" in result.render()

    def test_negative_control_breaks_global_check(self):
        """The shipped interference is visible to the BGP simulation:
        the negative control's no-transit property is globally broken."""
        control = run_incremental_policy_experiment(
            seed=0, recheck_old_invariants=False
        )
        assert control.global_check is not None
        assert not control.global_check.holds
        assert "BROKEN" in control.render()


class TestIipAblation:
    def test_iips_prevent_draft_errors(self):
        ablation = run_iip_ablation(seed=0)
        assert ablation.suppressed_faults >= 3  # the paper's IIP classes
        assert ablation.syntax_prompts_without > ablation.syntax_prompts_with

    def test_both_arms_verify(self):
        ablation = run_iip_ablation(seed=0)
        assert ablation.with_iips.result.verified
        assert ablation.without_iips.result.verified

    def test_render(self):
        assert "IIP ablation" in run_iip_ablation(seed=0).render()


class TestCli:
    def test_translate_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["translate", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "leverage" in output

    def test_synthesize_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["synthesize", "--seed", "0"]) == 0
        assert "no-transit" in capsys.readouterr().out

    def test_incremental_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["incremental"]) == 0

    def test_incremental_no_recheck_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["incremental", "--no-recheck"]) == 1

    def test_sweep(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--seeds", "2"]) == 0
        assert "mean" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
