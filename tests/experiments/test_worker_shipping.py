"""Worker-shipping A/B: coordinate-shipped campaigns == config-shipped.

The campaign engine's default mode ships only Scenario coordinate
tuples to pool workers and regenerates each network in-worker;
``config`` mode materializes networks in the parent and pickles them
into the task payload.  Generation is byte-deterministic, so the two
modes must be observationally identical — same configs, same RIBs,
same summary artifacts — at any worker count.
"""

import json

import pytest

from repro.batfish.bgpsim import BgpSimulation, rib_snapshots
from repro.cisco import generate_cisco
from repro.experiments.campaign import (
    Scenario,
    build_grid,
    run_campaign,
    run_scenario,
    set_worker_shipping,
    topology_seed,
    worker_shipping,
)
from repro.experiments.no_transit import materialize_network
from repro.topology.reference import build_reference_configs


@pytest.fixture(autouse=True)
def _restore_coords():
    yield
    set_worker_shipping("coords")


class TestShipModeToggle:
    def test_roundtrip(self):
        assert worker_shipping() == "coords"
        set_worker_shipping("config")
        assert worker_shipping() == "config"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_worker_shipping("carrier-pigeon")


class TestRegenerationDeterminism:
    def test_rematerialized_configs_byte_identical(self):
        """Two materializations of the same coordinates must render to
        byte-identical configs — the property that makes shipping
        coordinates instead of configs sound."""
        scenario = Scenario(family="waxman", size=8, seed=1, roles="c2i2h2")
        seed = topology_seed(scenario)
        rendered = []
        for _ in range(2):
            network = materialize_network(
                scenario.family,
                scenario.size,
                roles=scenario.roles,
                topology_seed=seed,
            )
            configs = build_reference_configs(network.topology)
            rendered.append(
                {name: generate_cisco(config) for name, config in configs.items()}
            )
        assert rendered[0] == rendered[1]

    def test_shipped_network_ribs_identical(self):
        """A run on a parent-materialized network converges to the same
        RIBs as a run that regenerates from coordinates."""
        scenario = Scenario(family="mesh", size=6, seed=0)
        snapshots = []
        for _ in range(2):
            network = materialize_network(scenario.family, scenario.size)
            sim = BgpSimulation(build_reference_configs(network.topology))
            sim.run()
            snapshots.append(rib_snapshots(sim))
        assert snapshots[0] == snapshots[1]

    def test_run_scenario_network_param_matches_regeneration(self):
        """run_scenario on a pre-materialized network must produce the
        same row (wall-clock aside) as coordinate regeneration."""
        scenario = Scenario(family="star", size=5, seed=0)
        network = materialize_network(scenario.family, scenario.size)
        rows = [run_scenario(scenario), run_scenario(scenario, network)]
        dicts = []
        for row in rows:
            record = dict(vars(row))
            record.pop("duration_s")
            dicts.append(record)
        assert dicts[0] == dicts[1]


class TestCampaignModeEquivalence:
    GRID = ("star", "mesh")

    def _summary(self, mode, workers):
        set_worker_shipping(mode)
        grid = build_grid(list(self.GRID), [5], seeds=1)
        summary = run_campaign(grid, workers=workers)
        return json.dumps(summary.to_dict(), sort_keys=True)

    def test_modes_identical_serial(self):
        assert self._summary("coords", 1) == self._summary("config", 1)

    def test_modes_identical_at_four_workers(self):
        baseline = self._summary("coords", 1)
        assert self._summary("coords", 4) == baseline
        assert self._summary("config", 4) == baseline


class TestMaterializeErrorPolicy:
    """Parent-side generation failures: expected bad coordinates become
    a logged ``None`` (the worker journals the error row); anything
    else is a real bug and must propagate, not be silently downgraded.
    """

    def test_bad_coordinates_return_none_and_log_once(self, caplog):
        from repro.experiments.campaign import (
            _SHIPPING_FAILURES_LOGGED,
            _materialize_for_shipping,
        )

        # An unsatisfiable role spec for the family raises ValueError
        # inside generation — the expected bad-coordinate shape.
        scenario = Scenario(
            family="random", size=4, seed=0, roles="c9i9h9"
        )
        _SHIPPING_FAILURES_LOGGED.discard(scenario.key())
        with caplog.at_level("WARNING", logger="repro.experiments.campaign"):
            assert _materialize_for_shipping(scenario) is None
            assert _materialize_for_shipping(scenario) is None
        mentions = [
            record
            for record in caplog.records
            if scenario.key() in record.getMessage()
        ]
        assert len(mentions) == 1  # once per scenario key, not per call

    def test_unexpected_exceptions_propagate(self, monkeypatch):
        from repro.experiments import no_transit
        from repro.experiments.campaign import _materialize_for_shipping

        def boom(*args, **kwargs):
            raise RuntimeError("generation crashed")

        monkeypatch.setattr(no_transit, "materialize_network", boom)
        with pytest.raises(RuntimeError, match="generation crashed"):
            _materialize_for_shipping(Scenario(family="star", size=4, seed=0))
