"""Unit tests for the global-prompt oscillating model (§4.1)."""

import pytest

from repro.experiments import OscillatingGlobalModel
from repro.lightyear import check_global_no_transit


@pytest.fixture()
def model(star7):
    return OscillatingGlobalModel(star7)


class TestStrategies:
    def test_starts_with_as_path_strategy(self, model):
        assert model.current_strategy == "as-path-regex"

    def test_feedback_flips_strategy(self, model):
        model.feedback("counterexample")
        assert model.current_strategy == "deny-at-customer"
        model.feedback("counterexample")
        assert model.current_strategy == "as-path-regex"

    def test_as_path_strategy_fails_globally(self, model, star7):
        configs = model.generate()
        check = check_global_no_transit(configs, star7.topology)
        assert not check.holds
        assert check.transit_violations

    def test_customer_deny_strategy_also_fails(self, model, star7):
        model.feedback("x")
        configs = model.generate()
        check = check_global_no_transit(configs, star7.topology)
        assert not check.holds
        assert check.transit_violations

    def test_strategies_differ_structurally(self, model):
        first = model.generate()["R1"]
        model.feedback("x")
        second = model.generate()["R1"]
        assert "DENY_ISP_TO_CUSTOMER" not in first.route_maps
        assert "DENY_ISP_TO_CUSTOMER" in second.route_maps
        assert "1" in first.as_path_lists

    def test_history_recorded(self, model):
        model.generate()
        model.feedback("x")
        model.generate()
        assert model.strategy_history == ["as-path-regex", "deny-at-customer"]

    def test_strategy_configs_are_syntax_clean(self, model):
        """Per §4.1, oscillation happens *after* topology and syntax
        errors are fixed — the strategies must be well-formed."""
        from repro.cisco import generate_cisco, parse_cisco

        for _ in range(2):
            configs = model.generate()
            for name, config in configs.items():
                rendered = generate_cisco(config)
                assert not parse_cisco(rendered).warnings, name
            model.feedback("x")


class TestExplicitDeltas:
    """The model names the routers it rewrites between rounds."""

    def test_first_draft_has_no_delta(self, model):
        model.generate()
        assert model.last_changed is None

    def test_later_drafts_name_the_touched_routers(self, model, star7):
        model.generate()
        model.feedback("x")
        configs = model.generate()
        assert model.last_changed is not None
        # every filter owner plus the customer router
        assert "R1" in model.last_changed
        # the delta names every router whose config could differ
        # between consecutive drafts
        touched = {
            name
            for name, config in configs.items()
            if any(
                map_name.startswith(("FILTER_COMM_OUT_", "DENY_ISP"))
                for map_name in config.route_maps
            )
        }
        assert touched <= model.last_changed

    def test_rounds_resimulate_incrementally(self, star7):
        from repro.lightyear.compose import IncrementalGlobalChecker

        model = OscillatingGlobalModel(star7)
        checker = IncrementalGlobalChecker()
        check_global_no_transit(
            model.generate(), star7.topology,
            checker=checker, changed_routers=model.last_changed,
        )
        assert checker.last_stats.mode == "full"  # cold start
        model.feedback("x")
        check_global_no_transit(
            model.generate(), star7.topology,
            checker=checker, changed_routers=model.last_changed,
        )
        assert checker.last_stats.incremental
        assert checker._fingerprints is None  # explicit, not derived
