"""Campaign-level observability: journal v6 metrics, traces, profiles.

The invariants under test:

* every scenario's registry delta rides its journal row (and survives
  ``--resume`` / ``--report``), while the deterministic artifacts
  (``to_dict`` / JSON / CSV) stay metric-free — byte-identity first;
* ``--trace`` writes a valid Chrome trace whose ``scenario`` spans
  cover (essentially all of) the per-scenario wall-clock;
* ``render_profile`` folds the merged metrics into phase/cache/slowest
  breakdowns.
"""

import json

from repro.cli import main
from repro.experiments.campaign import (
    build_grid,
    run_campaign,
    summary_from_journals,
)
from repro.obs import validate_trace_file

GRID_ARGS = dict(families=["star", "chain"], sizes=[4], seeds=1)


def _grid():
    return build_grid(**GRID_ARGS)


class TestJournalMetrics:
    def test_rows_carry_metrics_and_artifacts_do_not(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        assert summary.metrics["phase.scenario.count"] == len(_grid())
        assert summary.metrics["phase.synthesize.count"] == len(_grid())
        # Memo lookups land on hits or misses depending on how warm the
        # process already is; either way the series must be shipped.
        assert any(name.startswith("memo.") for name in summary.metrics)
        for line in journal.read_text().splitlines()[1:]:
            record = json.loads(line)
            assert record["metrics"]["phase.scenario.count"] == 1
        # The deterministic artifact stays metric-free.
        assert "metrics" not in summary.to_dict()
        out = summary.write_json(tmp_path / "out.json")
        assert "metrics" not in json.loads(out.read_text())

    def test_report_recovers_metrics_from_the_journal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        live = run_campaign(_grid(), workers=1, journal_path=journal)
        offline = summary_from_journals([str(journal)])
        assert offline.metrics == live.metrics
        assert offline.to_dict() == live.to_dict()

    def test_resume_folds_journaled_and_fresh_metrics(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        partial = run_campaign(
            _grid(), workers=1, journal_path=journal, limit=1
        )
        assert partial.metrics["phase.scenario.count"] == 1
        resumed = run_campaign(
            _grid(), workers=1, journal_path=journal, resume=True
        )
        assert resumed.metrics["phase.scenario.count"] == len(_grid())

    def test_parallel_workers_ship_their_deltas_home(self, tmp_path):
        # Fresh worker processes start cold, so their shipped deltas
        # must carry real route/cache/simulation activity even though
        # the parent process never touched its own counters.
        parallel = run_campaign(_grid(), workers=2)
        assert parallel.metrics["phase.scenario.count"] == len(_grid())
        assert parallel.metrics["phase.synthesize.count"] == len(_grid())
        converges = (
            parallel.metrics.get("sim.full_converge.count", 0)
            + parallel.metrics.get("sim.incremental_converge.count", 0)
        )
        assert converges >= len(_grid())
        assert any(name.startswith("memo.") for name in parallel.metrics)


class TestTraces:
    def test_trace_file_is_valid_and_covers_scenario_wallclock(
        self, tmp_path
    ):
        trace = tmp_path / "trace.json"
        summary = run_campaign(_grid(), workers=1, trace_path=trace)
        n_events, n_tracks = validate_trace_file(str(trace))
        assert n_events > 0 and n_tracks >= 1
        events = json.loads(trace.read_text())["traceEvents"]
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert len(by_name["scenario"]) == len(_grid())
        assert "synthesize" in by_name and "converge" in by_name
        spanned_s = sum(e["dur"] for e in by_name["scenario"]) / 1e6
        measured_s = sum(row.duration_s for row in summary.rows)
        assert spanned_s >= 0.95 * measured_s

    def test_parallel_trace_merges_worker_events(self, tmp_path):
        trace = tmp_path / "trace.json"
        run_campaign(_grid(), workers=2, trace_path=trace)
        events = json.loads(trace.read_text())["traceEvents"]
        scenario_events = [e for e in events if e["name"] == "scenario"]
        assert len(scenario_events) == len(_grid())
        assert validate_trace_file(str(trace))[0] == len(events)

    def test_tracing_is_off_again_after_the_run(self, tmp_path):
        from repro.obs import span_events, tracing_enabled

        run_campaign(_grid(), workers=1, trace_path=tmp_path / "t.json")
        assert not tracing_enabled()
        assert span_events() == []


class TestProfileRendering:
    def test_render_profile_sections(self, tmp_path):
        summary = run_campaign(_grid(), workers=1)
        profile = summary.render_profile(top=1)
        assert "phase breakdown:" in profile
        assert "scenario" in profile and "converge" in profile
        assert "slowest 1 scenario(s):" in profile
        assert "cache hit rates:" in profile
        assert "invariant-verdict" in profile

    def test_cache_and_phase_breakdowns(self):
        summary = run_campaign(_grid(), workers=1)
        caches = dict(
            (name, (hits, misses))
            for name, hits, misses in summary.cache_breakdown()
        )
        assert "invariant-verdict" in caches
        phases = {name for name, *_ in summary.phase_breakdown()}
        assert {"scenario", "synthesize", "converge"} <= phases

    def test_cli_profile_flag_works_offline(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal)
        code = main([
            "campaign", "--report", str(journal),
            "--json", "-", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign profile:" in out
        assert "cache hit rates:" in out

    def test_cli_trace_conflicts_with_report(self, capsys):
        code = main([
            "campaign", "--report", "-", "--trace", "t.json",
        ])
        assert code == 2
        assert "--trace" in capsys.readouterr().err
