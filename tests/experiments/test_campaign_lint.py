"""The campaign ``--lint`` axis: journal v7 rows, aggregates, CSV shape.

Linting is a process-wide toggle (not a scenario key), so enabling it
must not perturb scenario identity — resume and ``--report`` keep
working against journals written either way — and campaigns that do
not lint must keep emitting byte-for-byte v6-shaped rows (the lint
keys are absent, not null).
"""

import csv
import json

import pytest

from repro.experiments.campaign import (
    JOURNAL_VERSION,
    build_grid,
    campaign_lint,
    run_campaign,
    set_campaign_lint,
    summary_from_journals,
)

GRID_ARGS = dict(families=["star"], sizes=[4], seeds=1)


def _grid():
    return build_grid(**GRID_ARGS)


@pytest.fixture
def lint_enabled():
    set_campaign_lint(True)
    try:
        yield
    finally:
        set_campaign_lint(False)


class TestLintToggle:
    def test_default_is_off(self):
        assert campaign_lint() is False

    def test_toggle_round_trips(self, lint_enabled):
        assert campaign_lint() is True


class TestLintedCampaign:
    def test_rows_carry_lint_columns(self, tmp_path, lint_enabled):
        journal = tmp_path / "journal.jsonl"
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        for row in summary.rows:
            assert row.lint_findings is not None
            assert row.lint_high is not None
            assert row.lint_high <= row.lint_findings
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["version"] == JOURNAL_VERSION
        for line in journal.read_text().splitlines()[1:]:
            row = json.loads(line)["row"]
            assert row["lint_findings"] is not None
            assert row["lint_high"] is not None

    def test_summary_aggregates_lint(self, lint_enabled):
        summary = run_campaign(_grid(), workers=1)
        payload = summary.to_dict()
        assert payload["lint"]["scenarios"] == len(summary.rows)
        assert payload["lint"]["findings"] == sum(
            row.lint_findings for row in summary.rows
        )
        assert "lint:" in summary.render()

    def test_report_recovers_lint_from_the_journal(
        self, tmp_path, lint_enabled
    ):
        journal = tmp_path / "journal.jsonl"
        live = run_campaign(_grid(), workers=1, journal_path=journal)
        offline = summary_from_journals([str(journal)])
        assert offline.to_dict() == live.to_dict()

    def test_csv_never_carries_lint_columns(self, tmp_path, lint_enabled):
        summary = run_campaign(_grid(), workers=1)
        path = summary.write_csv(tmp_path / "out.csv")
        with path.open() as handle:
            fields = csv.DictReader(handle).fieldnames
        assert "lint_findings" not in fields
        assert "lint_high" not in fields


class TestUnlintedCampaign:
    def test_rows_stay_v6_shaped(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        summary = run_campaign(_grid(), workers=1, journal_path=journal)
        assert all(row.lint_findings is None for row in summary.rows)
        for line in journal.read_text().splitlines()[1:]:
            row = json.loads(line)["row"]
            assert "lint_findings" not in row
            assert "lint_high" not in row
        assert "lint" not in summary.to_dict()
        assert "lint:" not in summary.render()
