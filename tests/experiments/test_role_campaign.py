"""Role/topology axes in the campaign grid.

A roled scenario must travel the whole distance: grid cell → worker →
journal row → summary row → offline report, carrying its role spec,
its knobs, and the per-role no-transit verdict counts.
"""

import json

import pytest

from repro.experiments.campaign import (
    Scenario,
    build_grid,
    fold_journal,
    run_campaign,
    scenario_seed,
    summary_from_journal,
    topology_seed,
)

ROLED_GRID = dict(
    families=["random"], sizes=[7], seeds=1, roles=("c2i2h1",),
    topos=("p=0.5",),
)


class TestGridAxes:
    def test_axes_multiply_the_grid(self):
        grid = build_grid(
            ["random"], [6, 8], seeds=2,
            roles=("default", "c2i2h1"), topos=("default", "p=0.5"),
        )
        assert len(grid) == 2 * 2 * 2 * 2
        keys = [scenario.key() for scenario in grid]
        assert len(keys) == len(set(keys))
        assert any(key.endswith(":c2i2h1:p=0.5:default") for key in keys)

    def test_axes_are_part_of_the_seed(self):
        base = Scenario(family="random", size=6, seed=0)
        roled = Scenario(family="random", size=6, seed=0, roles="c2i2h1")
        assert scenario_seed(base) != scenario_seed(roled)
        assert topology_seed(base) != topology_seed(roled)

    def test_topology_seed_ignores_profile_and_iips(self):
        """All profile/ablation cells of one grid point share a graph,
        so warm per-topology simulation states keep paying off."""
        a = Scenario(family="waxman", size=6, seed=1, profile="sloppy")
        b = Scenario(family="waxman", size=6, seed=1, iips=False)
        assert topology_seed(a) == topology_seed(b)
        assert scenario_seed(a) != scenario_seed(b)

    def test_roles_require_seeded_families(self):
        with pytest.raises(ValueError, match="requires seeded families"):
            build_grid(["random", "chain"], [6], seeds=1, roles=("c2i2h1",))

    def test_knobs_require_matching_family(self):
        with pytest.raises(ValueError, match="unknown waxman knob"):
            build_grid(["waxman"], [6], seeds=1, topos=("p=0.5",))

    def test_oversized_role_spec_rejected_at_grid_build(self):
        with pytest.raises(ValueError, match="border routers"):
            build_grid(["random"], [4], seeds=1, roles=("c2i3h2",))

    def test_invalid_role_spec_rejected_at_grid_build(self):
        with pytest.raises(ValueError, match="invalid role spec"):
            build_grid(["random"], [6], seeds=1, roles=("3isps",))


class TestRoledCampaign:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("roled")
        journal = tmp_path / "roled.jsonl"
        summary = run_campaign(
            build_grid(**ROLED_GRID), workers=1, journal_path=journal
        )
        return tmp_path, journal, summary

    def test_rows_carry_roles_and_verdict_counts(self, outcome):
        _tmp, _journal, summary = outcome
        assert len(summary.rows) == 1
        (row,) = summary.rows
        assert row.error is None
        assert (row.roles, row.topo) == ("c2i2h1", "p=0.5")
        # 2 customers + 2 single-homed ISPs = 4 roles, all verified
        assert (row.roles_ok, row.roles_total) == (4, 4)
        assert row.verified and row.global_ok

    def test_journal_round_trips_the_axes(self, outcome):
        _tmp, journal, summary = outcome
        folded = fold_journal(journal)
        (record,) = folded.values()
        assert record.row == summary.rows[0]
        report = summary_from_journal(journal)
        assert report.rows == summary.rows

    def test_artifacts_carry_the_axes(self, outcome):
        tmp_path, _journal, summary = outcome
        data = json.loads(summary.write_json(tmp_path / "s.json").read_text())
        (row,) = data["rows"]
        assert row["roles"] == "c2i2h1"
        assert row["roles_total"] == 4
        assert data["families"]["random"]["roles_ok"] == 4
        csv_text = summary.write_csv(tmp_path / "s.csv").read_text()
        header, line = csv_text.strip().splitlines()
        assert "roles" in header.split(",") and "roles_total" in header.split(",")
        assert "c2i2h1" in line and "p=0.5" in line

    def test_same_grid_reruns_identically(self, outcome):
        """Deterministic fields only — wall clock is journal-only."""
        from repro.experiments.campaign import CampaignSummary

        tmp_path, _journal, summary = outcome
        again = run_campaign(build_grid(**ROLED_GRID), workers=1)
        assert [CampaignSummary._row_dict(row) for row in again.rows] == [
            CampaignSummary._row_dict(row) for row in summary.rows
        ]


class TestHubRowsHaveNoRoleVerdicts:
    def test_star_rejects_role_axes(self):
        """The star is the CLI default: a role spec or knob aimed at it
        must error loudly, never silently run a plain star."""
        from repro.experiments.no_transit import run_no_transit_experiment

        with pytest.raises(ValueError, match="fixed role layout"):
            run_no_transit_experiment(5, family="star", roles="c2i2h2")
        with pytest.raises(ValueError, match="no topology knobs"):
            run_no_transit_experiment(5, family="star", topo="p=0.9")

    def test_star_rows_report_zero_roles(self):
        summary = run_campaign(build_grid(["star"], [4], seeds=1))
        (row,) = summary.rows
        assert (row.roles, row.topo) == ("default", "default")
        assert (row.roles_ok, row.roles_total) == (0, 0)
        assert row.verified
