"""Tests for the experiment drivers (the table/figure generators)."""


import pytest

from repro.experiments import (
    run_local_vs_global,
    run_no_transit_experiment,
    run_scaling_sweep,
    run_synthesis_ablation,
    run_translation_ablation,
    run_translation_experiment,
)


class TestTranslationExperiment:
    def test_default_run_verifies(self):
        experiment = run_translation_experiment(seed=0)
        assert experiment.result.verified

    def test_leverage_in_paper_band(self):
        """§3.2 reports ~10X; accept the seeded band around it."""
        experiment = run_translation_experiment(seed=0)
        assert 2 <= experiment.human_prompts <= 4
        assert 10 <= experiment.automated_prompts <= 30
        assert 4.0 <= experiment.leverage <= 15.0

    def test_table2_contains_all_eight_rows(self):
        experiment = run_translation_experiment(seed=0)
        rows = {row.error: row for row in experiment.table2_rows()}
        assert len(rows) >= 8

    def test_table2_no_rows_match_paper(self):
        """'Different prefix lengths' and 'redistribution' must be the
        rows the generated prompt could NOT fix."""
        experiment = run_translation_experiment(seed=0)
        rows = {row.error: row for row in experiment.table2_rows()}
        assert not rows["Different prefix lengths match in BGP"].fixed_by_generated_prompt
        assert not rows["Different redistribution into BGP"].fixed_by_generated_prompt
        assert rows["Setting wrong BGP MED value"].fixed_by_generated_prompt
        assert rows["Different OSPF link cost"].fixed_by_generated_prompt

    def test_row_render(self):
        experiment = run_translation_experiment(seed=0)
        rendered = experiment.table2_rows()[0].render()
        assert rendered.endswith(("Yes", "No"))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_other_seeds_verify(self, seed):
        experiment = run_translation_experiment(seed=seed)
        assert experiment.result.verified
        assert experiment.human_prompts >= 2  # the two unfixable rows


class TestNoTransitExperiment:
    def test_default_run_verifies(self):
        experiment = run_no_transit_experiment(seed=0)
        assert experiment.result.verified
        assert experiment.result.global_check.holds

    def test_leverage_in_paper_band(self):
        """§4.2 reports 6X (12 automated / 2 human)."""
        experiment = run_no_transit_experiment(seed=0)
        assert experiment.human_prompts == 2
        assert 10 <= experiment.automated_prompts <= 22
        assert 4.0 <= experiment.leverage <= 11.0

    def test_resolutions_cover_table3_classes(self):
        experiment = run_no_transit_experiment(seed=0)
        keys = {key for _, key, _ in experiment.resolutions()}
        assert "wrong_router_id" in keys
        assert "missing_neighbor" in keys
        assert "and_or_semantics" in keys

    def test_initial_fault_counts(self):
        experiment = run_no_transit_experiment(seed=0)
        counts = experiment.initial_draft_fault_counts()
        assert counts["R1"] > counts["R4"]

    def test_smaller_star(self):
        experiment = run_no_transit_experiment(router_count=5, seed=0)
        assert experiment.result.verified


class TestAblations:
    def test_translation_ablation_reduces_human_effort(self):
        ablation = run_translation_ablation(seed=0)
        assert ablation.vpp_human < ablation.pair_programming_human
        assert ablation.human_effort_reduction > 2.0

    def test_synthesis_ablation_reduces_human_effort(self):
        ablation = run_synthesis_ablation(seed=0)
        assert ablation.vpp_human < ablation.pair_programming_human

    def test_render(self):
        ablation = run_translation_ablation(seed=0)
        assert "pair programming" in ablation.render()


class TestLocalVsGlobal:
    def test_global_oscillates_and_fails(self):
        result = run_local_vs_global(seed=0)
        assert not result.global_converged
        assert result.global_strategies[:2] == [
            "as-path-regex",
            "deny-at-customer",
        ]
        # Oscillation: strategies alternate.
        assert result.global_strategies[0] == result.global_strategies[2]

    def test_local_converges(self):
        result = run_local_vs_global(seed=0)
        assert result.local_converged
        assert result.local_correction_prompts > 0

    def test_render(self):
        result = run_local_vs_global(seed=0)
        text = result.render()
        assert "did NOT converge" in text
        assert "converged" in text


class TestScaling:
    def test_sweep_all_verify(self):
        points = run_scaling_sweep(sizes=(4, 6), seed=0)
        assert [p.router_count for p in points] == [4, 6]
        assert all(p.verified for p in points)

    def test_leverage_grows_with_size(self):
        """Fixed faults + more routers -> no fewer automated prompts."""
        points = run_scaling_sweep(sizes=(5, 10), seed=0)
        assert points[1].automated_prompts >= points[0].automated_prompts

    def test_render(self):
        (point,) = run_scaling_sweep(sizes=(4,), seed=0)
        assert "n= 4" in point.render()
