"""The ``--place`` campaign axis: degree-aware placement end to end."""

import json

import pytest

from repro.experiments.campaign import (
    CampaignSummary,
    Scenario,
    build_grid,
    run_scenario,
    scenario_seed,
    topology_seed,
)


class TestGridAxis:
    def test_place_multiplies_the_grid(self):
        grid = build_grid(
            ["random"], [8], seeds=1,
            roles=("c2i2h1",), places=("default", "degree"),
        )
        assert len(grid) == 2
        keys = [scenario.key() for scenario in grid]
        assert any(key.endswith(":degree") for key in keys)
        assert any(key.endswith(":default") for key in keys)

    def test_equivalent_spellings_normalize_to_one_cell(self):
        """'seeded', '', and 'default' are the same strategy — they
        collapse to one cell instead of fanning the identical
        placement out under distinct scenario keys."""
        grid = build_grid(
            ["random"], [8], seeds=1,
            places=("default", "seeded", ""),
        )
        assert len(grid) == 1
        assert grid[0].place == "default"
        # ...and 'seeded' alone works even on fixed-layout families.
        fixed = build_grid(["chain"], [6], seeds=1, places=("seeded",))
        assert fixed[0].place == "default"

    def test_place_requires_seeded_families(self):
        with pytest.raises(ValueError, match="seeded families"):
            build_grid(["random", "chain"], [6], seeds=1, places=("degree",))

    def test_unknown_place_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            build_grid(["random"], [6], seeds=1, places=("centrality",))

    def test_place_shapes_the_scenario_seed_but_not_the_graph(self):
        base = Scenario(family="random", size=8, seed=0, roles="c2i2h1")
        placed = Scenario(
            family="random", size=8, seed=0, roles="c2i2h1", place="degree"
        )
        assert scenario_seed(base) != scenario_seed(placed)
        # Placement relocates roles on the sampled graph; it must not
        # re-sample it, so ablation cells share warm simulation state.
        assert topology_seed(base) == topology_seed(placed)


class TestDegreeScenario:
    def test_degree_scenario_verifies(self):
        scenario = Scenario(
            family="random", size=8, seed=0, roles="c2i2h1", place="degree"
        )
        row = run_scenario(scenario)
        assert row.error is None
        assert row.verified and row.global_ok
        assert row.place == "degree"
        assert row.roles_total == 4
        assert row.roles_ok == row.roles_total

    def test_place_carried_in_summary_artifacts(self, tmp_path):
        scenario = Scenario(
            family="random", size=8, seed=0, roles="c2i2h1", place="degree"
        )
        summary = CampaignSummary(rows=[run_scenario(scenario)])
        data = json.loads(
            summary.write_json(tmp_path / "out.json").read_text()
        )
        assert data["rows"][0]["place"] == "degree"
        csv_text = (summary.write_csv(tmp_path / "out.csv")).read_text()
        header, first = csv_text.splitlines()[:2]
        assert "place" in header.split(",")
        assert "degree" in first.split(",")
