"""Per-fault translation runs: every Table 2 row in isolation.

For each fault, run the loop with exactly that fault injected (ideal
fix behaviour) and check it is detected at the right verifier stage and
resolved with the expected effort.
"""

import pytest

from repro.core.leverage import PromptKind
from repro.experiments.translation import run_translation_experiment
from repro.llm import BehaviorProfile


def _single_fault_run(fault_key):
    return run_translation_experiment(
        seed=0,
        profile=BehaviorProfile.always_fix(),
        initial_faults=(fault_key,),
    )


FIXABLE_CASES = [
    ("missing_local_as", "syntax"),
    ("stray_statement", "syntax"),
    ("missing_export_policy", "structural"),
    ("extra_export_policy", "structural"),
    ("ospf_cost_difference", "attribute"),
    ("ospf_passive_difference", "attribute"),
    ("wrong_med", "policy"),
]


class TestFixableFaultsInIsolation:
    @pytest.mark.parametrize("fault_key,stage", FIXABLE_CASES)
    def test_detected_at_right_stage_and_fixed_in_one_prompt(
        self, fault_key, stage
    ):
        experiment = _single_fault_run(fault_key)
        assert experiment.result.verified, fault_key
        automated = [
            record
            for record in experiment.result.prompt_log.records
            if record.kind is PromptKind.AUTOMATED
        ]
        assert len(automated) == 1, fault_key
        assert automated[0].stage == stage, fault_key
        assert experiment.result.prompt_log.human == 0, fault_key
        assert experiment.model.resolution_log == [(fault_key, "generated")]


class TestUnfixableFaultsInIsolation:
    def test_redistribution_needs_exactly_one_human_prompt(self):
        experiment = _single_fault_run("redistribution_unguarded")
        assert experiment.result.verified
        assert experiment.result.prompt_log.human == 1
        assert experiment.model.resolution_log == [
            ("redistribution_unguarded", "human")
        ]

    def test_ge_range_story_plays_out(self):
        """Policy diff -> stubborn -> human -> invalid syntax -> auto fix."""
        experiment = _single_fault_run("dropped_ge_range")
        assert experiment.result.verified
        log = experiment.result.prompt_log
        assert log.human == 1
        stages = [
            record.stage
            for record in log.records
            if record.kind is not PromptKind.INITIAL
        ]
        # Policy attempts first, then (after the human fix) a syntax fix.
        assert stages[0] == "policy"
        assert stages[-1] == "syntax"
        assert experiment.model.resolution_log == [
            ("dropped_ge_range", "human"),
            ("invalid_prefix_list_syntax", "generated"),
        ]

    def test_unfixable_consumes_attempts_before_punt(self):
        experiment = _single_fault_run("redistribution_unguarded")
        # Default translation limits: 3 automated attempts, then punt.
        assert experiment.result.prompt_log.automated == 3
