"""Tests for the table renderers and sample-prompt harvesting."""

from repro.experiments.prompts import (
    all_stage_prompts,
    sample_synthesis_prompts,
    sample_translation_prompts,
)
from repro.experiments.tables import (
    render_figure4,
    render_leverage_no_transit,
    render_leverage_translation,
    render_table1,
    render_table2,
    render_table3,
)


class TestSamplePrompts:
    def test_translation_covers_four_classes(self):
        stages = [stage for stage, _ in sample_translation_prompts(seed=0)]
        assert stages == ["syntax", "structural", "attribute", "policy"]

    def test_synthesis_covers_three_classes(self):
        stages = [stage for stage, _ in sample_synthesis_prompts(seed=0)]
        assert stages == ["syntax", "topology", "semantic"]

    def test_prompts_carry_spliced_fields(self):
        prompts = dict(sample_translation_prompts(seed=0))
        assert "2.3.4.5" in prompts["structural"] or "1.2.3.9" in prompts["structural"]
        assert "Loopback0" in prompts["attribute"]

    def test_all_stage_prompts(self):
        from repro.experiments import run_translation_experiment

        experiment = run_translation_experiment(seed=0)
        syntax = all_stage_prompts(
            experiment.result.prompt_log.records, "syntax"
        )
        assert all("syntax error" in prompt for prompt in syntax)


class TestRenderers:
    def test_table1_sections(self):
        text = render_table1(seed=0)
        assert text.startswith("Table 1")
        assert "[syntax]" in text

    def test_table2_column_header(self):
        text = render_table2(seed=0)
        assert "Error" in text and "Fixed" in text

    def test_table3_paper_phrasing(self):
        text = render_table3(seed=0)
        assert "However, they should be denied." in text

    def test_leverage_lines_mention_paper_targets(self):
        assert "10X" in render_leverage_translation(seed=0)
        assert "6X" in render_leverage_no_transit(seed=0)

    def test_figure4_structure(self):
        text = render_figure4(router_count=5)
        assert "routers: 5" in text
        assert "links: 4" in text
        assert "external peers: 5" in text
