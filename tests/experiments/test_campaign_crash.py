"""Batch-engine crash handling: dead pools and hung workers.

A worker that dies hard (SIGKILL, OOM, C-level crash) breaks the whole
``ProcessPoolExecutor``.  The grid must not be lost with a raw
``BrokenProcessPoolError`` traceback: every row journaled before the
crash is kept, a :class:`CampaignInterrupted` names the ``--resume``
invocation, and the resumed campaign converges to artifacts
byte-identical to an uninterrupted run.

Crash injection is a pickle bomb: with ``--ship config`` the parent
materializes the task payload, so a monkeypatched
``_materialize_for_shipping`` can return an object whose unpickling in
the worker SIGKILLs (or hangs) that process — deterministic under any
multiprocessing start method, no signal/timing races.
"""

import os
import signal
import time

import pytest

import repro.experiments.campaign as campaign_module
from repro.experiments.campaign import (
    CampaignInterrupted,
    CampaignStalled,
    build_grid,
    fold_journal,
    run_campaign,
    set_worker_shipping,
)

GRID_ARGS = dict(families=["chain", "star"], sizes=[4], seeds=2)


def _grid():
    return build_grid(**GRID_ARGS)


def _artifacts(summary, tmp_path, stem):
    json_path = summary.write_json(tmp_path / f"{stem}.json")
    csv_path = summary.write_csv(tmp_path / f"{stem}.csv")
    return json_path.read_bytes(), csv_path.read_bytes()


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_self():
    time.sleep(600)


class _Bomb:
    """Unpickling this in a worker runs ``payload()`` there."""

    def __init__(self, payload):
        self.payload = payload

    def __reduce__(self):
        return (self.payload, ())


@pytest.fixture(autouse=True)
def _restore_coords():
    yield
    set_worker_shipping("coords")


def _arm(monkeypatch, victim_key, payload):
    """Ship a bomb for the victim scenario, real payloads otherwise."""
    real = campaign_module._materialize_for_shipping
    set_worker_shipping("config")

    def materialize(scenario):
        if scenario.key() == victim_key:
            return _Bomb(payload)
        return real(scenario)

    monkeypatch.setattr(
        campaign_module, "_materialize_for_shipping", materialize
    )


class TestBrokenPool:
    def test_journaled_rows_survive_a_dead_worker(
        self, tmp_path, monkeypatch
    ):
        """The satellite fix: BrokenProcessPoolError no longer aborts
        the grid — journaled work is kept and the error is resumable."""
        grid = _grid()
        journal = tmp_path / "crash.jsonl"
        # The last grid scenario is dequeued after earlier ones with
        # workers=2, so rows exist in the journal by the time it kills.
        victim = grid[-1].key()
        _arm(monkeypatch, victim, _kill_self)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(grid, workers=2, journal_path=journal)
        assert "--resume" in str(excinfo.value)
        assert str(journal) in str(excinfo.value)
        folded = fold_journal(journal)
        assert folded, "journaled rows were lost with the pool"
        assert victim not in folded

    def test_resume_after_crash_converges_byte_identically(
        self, tmp_path, monkeypatch
    ):
        grid = _grid()
        journal = tmp_path / "crash.jsonl"
        _arm(monkeypatch, grid[-1].key(), _kill_self)
        with pytest.raises(CampaignInterrupted):
            run_campaign(grid, workers=2, journal_path=journal)
        # Disarm: back to coordinate shipping, nothing monkeypatched
        # matters because coords mode never calls materialize.
        set_worker_shipping("coords")
        resumed = run_campaign(
            grid, workers=2, journal_path=journal, resume=True
        )
        assert not resumed.incomplete
        baseline = run_campaign(grid, workers=1)
        assert _artifacts(resumed, tmp_path, "resumed") == _artifacts(
            baseline, tmp_path, "baseline"
        )

    def test_crash_without_journal_explains_the_loss(
        self, tmp_path, monkeypatch
    ):
        grid = _grid()
        _arm(monkeypatch, grid[-1].key(), _kill_self)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(grid, workers=2)
        message = str(excinfo.value)
        assert "no journal" in message
        assert "--journal" in message

    def test_interrupted_error_carries_progress(
        self, tmp_path, monkeypatch
    ):
        grid = _grid()
        journal = tmp_path / "crash.jsonl"
        _arm(monkeypatch, grid[-1].key(), _kill_self)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(grid, workers=2, journal_path=journal)
        error = excinfo.value
        assert error.journal == journal
        assert error.total == len(grid)
        assert 0 <= error.completed < len(grid)


class TestStalledPool:
    def test_hung_worker_raises_stalled_instead_of_hanging(
        self, tmp_path, monkeypatch
    ):
        """One sleeping worker must not stall the grid forever: the
        per-wait timeout raises CampaignStalled (a CampaignInterrupted,
        so the same --resume guidance applies) and the pool is killed
        rather than joined."""
        grid = _grid()
        journal = tmp_path / "stall.jsonl"
        _arm(monkeypatch, grid[-1].key(), _hang_self)
        started = time.monotonic()
        with pytest.raises(CampaignStalled) as excinfo:
            run_campaign(grid, workers=2, journal_path=journal, timeout=3.0)
        # well under the 600s hang: the pool was killed, not joined
        assert time.monotonic() - started < 60
        assert "--resume" in str(excinfo.value)
        assert isinstance(excinfo.value, CampaignInterrupted)
        assert fold_journal(journal)

    def test_cli_maps_interrupted_to_exit_code_3(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        grid_flags = [
            "--families", "chain,star", "--sizes", "4", "--seeds", "2",
        ]
        journal = tmp_path / "stall.jsonl"
        _arm(monkeypatch, _grid()[-1].key(), _hang_self)
        code = main([
            "campaign", *grid_flags, "--workers", "2", "--timeout", "3",
            "--ship", "config",  # the CLI resets ship mode; re-arm it
            "--journal", str(journal), "--json", "-",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "--resume" in err


class TestTrailingNewlineRepair:
    def test_truncated_tail_repaired_even_under_a_different_grid(
        self, tmp_path
    ):
        """Appending repairs a crash-truncated final line *always*, not
        only when resuming the same grid: resuming under a different
        grid appends a fresh header, which must not land on the
        fragment and corrupt both lines."""
        journal = tmp_path / "truncated.jsonl"
        run_campaign(build_grid(["star"], [4], seeds=1), journal_path=journal)
        original = journal.read_text()
        assert original.endswith("\n")
        journal.write_text(original[:-20])  # mid-record crash truncation

        resumed = run_campaign(
            _grid(), journal_path=journal, resume=True
        )
        assert not resumed.incomplete
        lines = journal.read_text().splitlines()
        # every line parses: the fresh header went onto its own line
        import json

        for line in lines:
            try:
                json.loads(line)
            except json.JSONDecodeError:
                # exactly one fragment is tolerated mid-file (the
                # truncated record), never a fused header
                assert "campaign" not in line or not line.startswith("{")
        baseline = run_campaign(_grid(), workers=1)
        assert _artifacts(resumed, tmp_path, "resumed") == _artifacts(
            baseline, tmp_path, "baseline"
        )
