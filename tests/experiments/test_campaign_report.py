"""Offline journal analytics: ``repro campaign --report``.

A report renders a summary from an existing journal without executing
anything, and — because v2 journal headers carry the grid's keys in
grid order — its JSON/CSV artifacts are byte-identical to the live
run's.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.campaign import (
    build_grid,
    run_campaign,
    service_journals,
    summary_from_journal,
    summary_from_journals,
)

GRID_ARGS = dict(families=["chain", "star"], sizes=[4], seeds=2)


def _grid():
    return build_grid(**GRID_ARGS)


def _artifacts(summary, tmp_path, stem):
    json_path = summary.write_json(tmp_path / f"{stem}.json")
    csv_path = summary.write_csv(tmp_path / f"{stem}.csv")
    return json_path.read_bytes(), csv_path.read_bytes()


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("live")
    journal = tmp_path / "live.jsonl"
    summary = run_campaign(_grid(), workers=1, journal_path=journal)
    return journal, _artifacts(summary, tmp_path, "live"), summary


class TestSummaryFromJournal:
    def test_round_trips_the_live_summary(self, live, tmp_path):
        journal, artifacts, summary = live
        report = summary_from_journal(journal)
        assert report.rows == summary.rows
        assert report.total == summary.total
        assert not report.incomplete
        assert _artifacts(report, tmp_path, "report") == artifacts

    def test_parallel_journal_reports_in_grid_order(self, live, tmp_path):
        """Completion order in the journal body must not leak through."""
        _journal, artifacts, _summary = live
        journal = tmp_path / "par.jsonl"
        run_campaign(_grid(), workers=4, journal_path=journal)
        report = summary_from_journal(journal)
        assert _artifacts(report, tmp_path, "par_report") == artifacts

    def test_carries_cache_and_sim_accounting(self, live):
        journal, _artifacts_, summary = live
        report = summary_from_journal(journal)
        assert (report.cache_hits, report.cache_misses) == (
            summary.cache_hits, summary.cache_misses,
        )
        assert report.sim_full_runs == summary.sim_full_runs
        assert report.sim_incremental_runs == summary.sim_incremental_runs
        assert report.resumed == len(report.rows)
        assert report.workers == 0  # nothing executed

    def test_partial_journal_reports_incomplete(self, tmp_path):
        journal = tmp_path / "partial.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal, limit=2)
        report = summary_from_journal(journal)
        assert len(report.rows) == 2
        assert report.total == len(_grid())
        assert report.incomplete

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            summary_from_journal(tmp_path / "nope.jsonl")

    def test_resume_under_different_grid_reports_the_new_grid(self, tmp_path):
        """Resuming a journal with a different grid appends a fresh
        header, so the offline report reflects the grid that now owns
        the journal instead of silently dropping its rows."""
        journal = tmp_path / "switch.jsonl"
        run_campaign(build_grid(["star"], [4], seeds=1), journal_path=journal)
        live = run_campaign(
            _grid(), journal_path=journal, resume=True
        )
        assert not live.incomplete
        report = summary_from_journal(journal)
        assert report.rows == live.rows
        assert report.total == len(_grid())
        assert not report.incomplete

    def test_legacy_journal_without_keys_falls_back(self, live, tmp_path):
        """v1 journals (no header keys) report in completion order."""
        source, _artifacts_, summary = live
        legacy = tmp_path / "legacy.jsonl"
        lines = source.read_text().splitlines()
        header = json.loads(lines[0])
        del header["keys"]
        header["version"] = 1
        legacy.write_text(
            "\n".join([json.dumps(header, sort_keys=True)] + lines[1:]) + "\n"
        )
        report = summary_from_journal(legacy)
        assert sorted(map(repr, report.rows)) == sorted(map(repr, summary.rows))
        assert report.total == len(report.rows)


class TestReportCli:
    ARGS = [
        "campaign", "--families", "chain,star", "--sizes", "4", "--seeds", "2",
    ]

    def test_report_matches_live_artifacts(self, live, tmp_path, capsys):
        journal, artifacts, _summary = live
        out_json = tmp_path / "report.json"
        out_csv = tmp_path / "report.csv"
        code = main([
            "campaign", "--report", str(journal),
            "--json", str(out_json), "--csv", str(out_csv),
        ])
        assert code == 0
        assert (out_json.read_bytes(), out_csv.read_bytes()) == artifacts
        output = capsys.readouterr().out
        assert "campaign:" in output
        assert "resumed from journal" in output

    def test_report_runs_nothing(self, live, tmp_path, capsys):
        journal, _artifacts_, _summary = live
        before = journal.read_text()
        code = main(["campaign", "--report", str(journal), "--json", "-"])
        assert code == 0
        assert journal.read_text() == before

    def test_report_of_partial_journal_hints_resume(self, tmp_path, capsys):
        journal = tmp_path / "partial.jsonl"
        run_campaign(_grid(), workers=1, journal_path=journal, limit=1)
        code = main(["campaign", "--report", str(journal), "--json", "-"])
        assert code == 0
        output = capsys.readouterr().out
        assert "--resume" in output

    def test_report_missing_journal_errors(self, tmp_path, capsys):
        code = main([
            "campaign", "--report", str(tmp_path / "nope.jsonl"), "--json", "-",
        ])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_report_conflicts_with_resume(self, tmp_path, capsys):
        code = main([
            "campaign", "--report", "a.jsonl", "--resume", "a.jsonl",
        ])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_report_rejects_execution_only_flags(self, capsys):
        code = main([
            "campaign", "--report", "a.jsonl",
            "--workers", "4", "--limit", "2", "--journal", "b.jsonl",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "--limit" in err and "--journal" in err

    def test_report_rejects_grid_flags(self, capsys):
        code = main([
            "campaign", "--report", "a.jsonl",
            "--families", "mesh", "--sizes", "20",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--families" in err and "--sizes" in err


class TestMultiJournalMerge:
    """--report accepts several journals and merges them into one
    cross-campaign summary: duplicate keys last-write-wins, output
    deterministic."""

    @pytest.fixture(scope="class")
    def journals(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("merge")
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        run_campaign(build_grid(["chain"], [4], seeds=2), journal_path=first)
        # second campaign overlaps on one scenario (chain:4:1) and adds
        # a new family
        run_campaign(
            build_grid(["chain"], [4], seeds=2)[1:]
            + build_grid(["star"], [4], seeds=1),
            journal_path=second,
        )
        return tmp_path, first, second

    def test_merge_is_a_union_with_last_write_wins(self, journals):
        _tmp, first, second = journals
        merged = summary_from_journals([first, second])
        keys = [
            (row.family, row.size, row.seed) for row in merged.rows
        ]
        assert keys == [("chain", 4, 0), ("chain", 4, 1), ("star", 4, 0)]
        assert merged.total == 3
        assert not merged.incomplete
        # the duplicated scenario keeps the later journal's record
        duplicated = merged.rows[1]
        later = summary_from_journal(second).rows[0]
        assert duplicated == later

    def test_merge_is_deterministic(self, journals, tmp_path):
        _tmp, first, second = journals
        once = summary_from_journals([first, second])
        twice = summary_from_journals([first, second])
        a = once.write_json(tmp_path / "a.json").read_bytes()
        b = twice.write_json(tmp_path / "b.json").read_bytes()
        assert a == b

    def test_argument_order_controls_duplicates_and_order(self, journals):
        _tmp, first, second = journals
        forward = summary_from_journals([first, second])
        backward = summary_from_journals([second, first])
        assert {((r.family, r.seed)) for r in forward.rows} == {
            ((r.family, r.seed)) for r in backward.rows
        }
        # reversed argument order reorders rows (first appearance wins)
        assert [r.family for r in backward.rows] == ["chain", "star", "chain"]

    def test_single_journal_path_unchanged(self, journals):
        _tmp, first, _second = journals
        assert summary_from_journals([first]).rows == summary_from_journal(
            first
        ).rows

    def test_missing_journal_in_list_raises(self, journals, tmp_path):
        _tmp, first, _second = journals
        with pytest.raises(ValueError, match="does not exist"):
            summary_from_journals([first, tmp_path / "nope.jsonl"])
        with pytest.raises(ValueError, match="no journals"):
            summary_from_journals([])

    def test_cli_merges_repeated_report_flags(self, journals, tmp_path, capsys):
        _tmp, first, second = journals
        out_json = tmp_path / "merged.json"
        code = main([
            "campaign", "--report", str(first), "--report", str(second),
            "--json", str(out_json),
        ])
        assert code == 0
        data = json.loads(out_json.read_text())
        assert data["scenarios"] == 3
        assert set(data["families"]) == {"chain", "star"}

    def test_cli_report_conflicts_with_roles_axis(self, capsys):
        code = main([
            "campaign", "--report", "a.jsonl", "--roles", "c2i2h1",
        ])
        assert code == 2
        assert "--roles" in capsys.readouterr().err


class TestServiceDirectoryExpansion:
    """A --report argument may be a campaign-service directory: it
    expands to the manifest (grid order) plus every shard journal."""

    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        """A hand-built service layout: the grid's header in
        manifest.jsonl, the result rows split across two shards."""

        tmp_path = tmp_path_factory.mktemp("svc")
        source = tmp_path / "source.jsonl"
        run_campaign(_grid(), workers=1, journal_path=source)
        lines = source.read_text().splitlines()
        directory = tmp_path / "c0001"
        directory.mkdir()
        (directory / "manifest.jsonl").write_text(lines[0] + "\n")
        body = lines[1:]
        # interleave rows across shards so neither holds grid order
        (directory / "shard-00.jsonl").write_text(
            "\n".join(body[1::2]) + "\n"
        )
        (directory / "shard-01.jsonl").write_text(
            "\n".join(body[0::2]) + "\n"
        )
        return tmp_path, directory, source

    def test_expansion_lists_manifest_first(self, campaign_dir):
        _tmp, directory, _source = campaign_dir
        journals = service_journals(directory)
        assert journals[0].name == "manifest.jsonl"
        assert [p.name for p in journals[1:]] == [
            "shard-00.jsonl", "shard-01.jsonl",
        ]

    def test_directory_report_matches_single_journal(
        self, campaign_dir, tmp_path
    ):
        _tmp, directory, source = campaign_dir
        merged = summary_from_journals([directory])
        single = summary_from_journal(source)
        assert _artifacts(merged, tmp_path, "dir") == _artifacts(
            single, tmp_path, "single"
        )

    def test_cli_report_accepts_the_directory(
        self, campaign_dir, tmp_path, capsys
    ):
        _tmp, directory, source = campaign_dir
        out_a = tmp_path / "dir.json"
        out_b = tmp_path / "file.json"
        assert main([
            "campaign", "--report", str(directory), "--json", str(out_a),
        ]) == 0
        assert main([
            "campaign", "--report", str(source), "--json", str(out_b),
        ]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_directory_without_manifest_is_rejected(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(ValueError, match="manifest.jsonl"):
            service_journals(tmp_path / "plain")
        with pytest.raises(ValueError, match="manifest.jsonl"):
            summary_from_journals([tmp_path / "plain"])


class TestWorkerToggles:
    def test_initializer_propagates_optimization_toggles(self):
        """Pool workers must inherit the parent's toggles even under
        spawn/forkserver start methods, where module globals reset."""
        from repro.batfish.bgpsim import (
            batched_evaluation_enabled,
            incremental_simulation_enabled,
        )
        from repro.core import toggles
        from repro.experiments.campaign import _init_worker
        from repro.netmodel.route import route_model
        from repro.symbolic.memo import memoization_enabled

        legacy = {
            "route_model": "v1",
            "decision_cache": False,
            "batched_evaluation": False,
            "incremental_simulation": False,
            "memoization": False,
            "worker_shipping": "config",
        }
        try:
            _init_worker(legacy)
            assert not memoization_enabled()
            assert not incremental_simulation_enabled()
            # batched_evaluation was silently dropped by the old
            # hand-picked initializer argument list.
            assert not batched_evaluation_enabled()
            assert route_model() == "v1"
        finally:
            _init_worker(toggles.DEFAULTS)
        assert memoization_enabled()
        assert incremental_simulation_enabled()
        assert batched_evaluation_enabled()
        assert route_model() == "v2"

    def test_initializer_covers_every_registered_toggle(self):
        """The snapshot the executor ships must name every toggle in
        the registry — a new toggle cannot silently skip propagation."""
        from repro.core import toggles

        assert set(toggles.snapshot()) == set(toggles.DEFAULTS)
