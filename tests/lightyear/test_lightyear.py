"""Tests for local invariants, their verification, and composition."""

import copy

import pytest

from repro.lightyear import (
    EgressFilterInvariant,
    IngressTagInvariant,
    check_composition,
    check_global_no_transit,
    no_transit_invariants,
    verify_invariant,
    verify_invariants,
)
from repro.netmodel import Action, Community
from repro.netmodel.routing_policy import SetCommunity
from repro.topology.generator import ingress_community


@pytest.fixture()
def invariants(star7):
    return no_transit_invariants(star7.topology)


class TestInvariantDerivation:
    def test_count_two_per_spoke(self, invariants):
        assert len(invariants) == 12  # 6 spokes x (tag + filter)

    def test_tags_match_paper_numbering(self, invariants):
        tags = {
            str(i.neighbor_ip): i.community
            for i in invariants
            if isinstance(i, IngressTagInvariant)
        }
        assert tags["1.0.0.2"] == Community(100, 1)  # R2
        assert tags["2.0.0.2"] == Community(101, 1)  # R3

    def test_filters_forbid_other_tags(self, invariants):
        filters = {
            str(i.neighbor_ip): i.forbidden
            for i in invariants
            if isinstance(i, EgressFilterInvariant)
        }
        r2_filter = filters["1.0.0.2"]
        assert ingress_community(2) not in r2_filter
        assert ingress_community(3) in r2_filter
        assert len(r2_filter) == 5

    def test_describe(self, invariants):
        assert any("must carry" in i.describe() for i in invariants
                   if isinstance(i, IngressTagInvariant))


class TestVerification:
    def test_reference_configs_satisfy_all(self, star7_configs, invariants):
        assert verify_invariants(star7_configs, invariants) == []

    def test_missing_tag_detected(self, star7_configs, invariants):
        configs = copy.deepcopy(star7_configs)
        for clause in configs["R1"].route_maps["ADD_COMM_R2"].clauses:
            clause.sets = []
        violations = verify_invariants(configs, invariants)
        assert any("without adding the community" in v.message
                   for v in violations)

    def test_leaky_egress_detected_with_paper_phrasing(
        self, star7_configs, invariants
    ):
        """Table 3's semantic example: 'permits routes that have the
        community ... However, they should be denied.'"""
        configs = copy.deepcopy(star7_configs)
        egress = configs["R1"].route_maps["FILTER_COMM_OUT_R2"]
        egress.clauses = [c for c in egress.clauses if c.action is Action.PERMIT]
        violations = verify_invariants(configs, invariants)
        assert violations
        message = violations[0].message
        assert "permits routes that have the community" in message
        assert "However, they should be denied." in message

    def test_missing_attachment_detected(self, star7_configs, invariants):
        configs = copy.deepcopy(star7_configs)
        configs["R1"].bgp.neighbors["1.0.0.2"].import_policy = None
        violations = verify_invariants(configs, invariants)
        assert any("No import route-map" in v.message for v in violations)

    def test_missing_router_detected(self, star7_configs, invariants):
        configs = {k: v for k, v in star7_configs.items() if k != "R1"}
        violations = verify_invariants(configs, invariants)
        assert violations

    def test_unknown_invariant_type_raises(self, star7_configs):
        with pytest.raises(TypeError):
            verify_invariant(star7_configs["R1"], object())

    def test_and_semantics_filter_violates(self, star7_configs, invariants):
        """The §4.2 AND/OR bug is a genuine invariant violation."""
        from repro.llm.synthesis_faults import _merge_deny_clauses

        configs = copy.deepcopy(star7_configs)
        _merge_deny_clauses("FILTER_COMM_OUT_R2")(configs["R1"])
        violations = verify_invariants(configs, invariants)
        assert any(v.policy_name == "FILTER_COMM_OUT_R2" for v in violations)


class TestComposition:
    def test_reference_composition_holds(self, star7, star7_configs, invariants):
        result = check_composition(invariants, star7_configs, star7.topology)
        assert result.holds
        assert len(result.covered_pairs) == 30  # 6x5 ordered pairs

    def test_uncovered_pair_detected(self, star7, star7_configs, invariants):
        partial = [
            i
            for i in invariants
            if not (
                isinstance(i, EgressFilterInvariant)
                and str(i.neighbor_ip) == "1.0.0.2"
            )
        ]
        result = check_composition(partial, star7_configs, star7.topology)
        assert not result.holds
        assert result.uncovered_pairs

    def test_tag_stripping_detected(self, star7, star7_configs, invariants):
        configs = copy.deepcopy(star7_configs)
        rm = configs["R1"].route_maps["ADD_COMM_R2"]
        rm.clauses[0].sets = [
            SetCommunity(s.communities, additive=False)
            for s in rm.clauses[0].sets
        ]
        result = check_composition(invariants, configs, star7.topology)
        assert not result.holds
        assert "R1:ADD_COMM_R2" in result.tag_stripping_policies


class TestGlobalCheck:
    def test_reference_network_holds(self, star7, star7_configs):
        result = check_global_no_transit(star7_configs, star7.topology)
        assert result.holds
        assert "confirms" in result.describe()

    def test_unfiltered_hub_violates(self, star7, star7_configs):
        configs = copy.deepcopy(star7_configs)
        for neighbor in configs["R1"].bgp.neighbors.values():
            neighbor.export_policy = None
        result = check_global_no_transit(configs, star7.topology)
        assert not result.holds
        assert result.transit_violations

    def test_overblocking_breaks_customer_reachability(
        self, star7, star7_configs
    ):
        configs = copy.deepcopy(star7_configs)
        egress = configs["R1"].route_maps["FILTER_COMM_OUT_R2"]
        egress.clauses = [c for c in egress.clauses if c.action is Action.DENY]
        result = check_global_no_transit(configs, star7.topology)
        assert not result.holds
        assert result.customer_unreachable

    def test_missing_spoke_announcement_detected(self, star7, star7_configs):
        configs = copy.deepcopy(star7_configs)
        configs["R2"].bgp.networks = []
        result = check_global_no_transit(configs, star7.topology)
        assert result.isp_prefixes_missing_at_hub
