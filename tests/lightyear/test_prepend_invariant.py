"""Tests for the EgressPrependInvariant (incremental-policy extension)."""

import copy

import pytest

from repro.lightyear import EgressPrependInvariant, verify_invariant
from repro.netmodel import Action, Ipv4Address
from repro.netmodel.routing_policy import SetAsPathPrepend
from repro.topology.reference import build_reference_configs, egress_map_name


@pytest.fixture()
def hub_with_prepend(star7):
    configs = build_reference_configs(star7.topology)
    hub = configs["R1"]
    egress = hub.route_maps[egress_map_name(4)]
    for clause in egress.clauses:
        if clause.action is Action.PERMIT:
            clause.sets.append(SetAsPathPrepend(1, 2))
    return hub


def _invariant(count=2):
    return EgressPrependInvariant(
        router="R1",
        neighbor_ip=Ipv4Address.parse("3.0.0.2"),  # R4's hub-side address
        asn=1,
        count=count,
    )


class TestEgressPrependInvariant:
    def test_holds_on_prepending_config(self, hub_with_prepend):
        assert verify_invariant(hub_with_prepend, _invariant()) is None

    def test_violated_without_prepend(self, star7):
        configs = build_reference_configs(star7.topology)
        violation = verify_invariant(configs["R1"], _invariant())
        assert violation is not None
        assert "must be prepended 2 time(s)" in violation.message

    def test_violated_by_undercount(self, hub_with_prepend):
        hub = copy.deepcopy(hub_with_prepend)
        egress = hub.route_maps[egress_map_name(4)]
        for clause in egress.clauses:
            clause.sets = [
                SetAsPathPrepend(action.asn, 1)
                if isinstance(action, SetAsPathPrepend)
                else action
                for action in clause.sets
            ]
        violation = verify_invariant(hub, _invariant())
        assert violation is not None
        assert "prepended 1 time(s)" in violation.message

    def test_missing_attachment_reported(self, hub_with_prepend):
        hub = copy.deepcopy(hub_with_prepend)
        hub.bgp.neighbors["3.0.0.2"].export_policy = None
        violation = verify_invariant(hub, _invariant())
        assert violation is not None
        assert "No export route-map" in violation.message

    def test_describe(self):
        assert "prepended 2 time(s)" in _invariant().describe()
        assert _invariant().direction == "export"
