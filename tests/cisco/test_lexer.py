"""Tests for the IOS line tokenizer."""

from repro.cisco.lexer import iter_blocks, tokenize


class TestTokenize:
    def test_skips_blank_lines(self):
        assert tokenize("\n\n\n") == []

    def test_skips_bang_comments(self):
        assert tokenize("!\n! comment\n") == []

    def test_skips_hash_comments(self):
        assert tokenize("# generated\n") == []

    def test_line_numbers_are_source_accurate(self):
        lines = tokenize("!\nhostname r1\n!\ninterface eth0\n")
        assert [line.number for line in lines] == [2, 4]

    def test_indent_measured(self):
        lines = tokenize("interface eth0\n ip address 1.0.0.1 255.255.255.0\n")
        assert lines[0].indent == 0
        assert lines[1].indent == 1

    def test_tokens_split_on_whitespace(self):
        (line,) = tokenize("neighbor 1.0.0.2   remote-as   2\n")
        assert line.tokens == ("neighbor", "1.0.0.2", "remote-as", "2")

    def test_keyword_lowercased(self):
        (line,) = tokenize("Interface eth0\n")
        assert line.keyword == "interface"

    def test_starts_with_case_insensitive(self):
        (line,) = tokenize("Router BGP 100\n")
        assert line.starts_with("router", "bgp")

    def test_starts_with_too_short(self):
        (line,) = tokenize("router\n")
        assert not line.starts_with("router", "bgp")


class TestIterBlocks:
    def test_groups_children_by_indent(self):
        lines = tokenize(
            "interface eth0\n ip address 1.0.0.1 255.255.255.0\nhostname r1\n"
        )
        blocks = list(iter_blocks(lines))
        assert len(blocks) == 2
        header, children = blocks[0]
        assert header.keyword == "interface"
        assert len(children) == 1

    def test_header_without_children(self):
        lines = tokenize("hostname r1\n")
        blocks = list(iter_blocks(lines))
        assert blocks[0][1] == []
