"""Tests for the IOS generator (and parse/generate round-trips)."""

from repro.cisco import generate_cisco, parse_cisco
from repro.netmodel import (
    BgpNeighbor,
    Interface,
    Ipv4Address,
    Prefix,
    RouterConfig,
)
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO


class TestGenerate:
    def test_hostname_rendered(self):
        cfg = RouterConfig(hostname="r9")
        assert "hostname r9" in generate_cisco(cfg)

    def test_interface_rendered_with_mask(self):
        cfg = RouterConfig(hostname="r")
        cfg.add_interface(Interface.with_address("eth0/0", "2.0.0.1/24"))
        text = generate_cisco(cfg)
        assert "ip address 2.0.0.1 255.255.255.0" in text

    def test_ospf_cost_rendered(self):
        cfg = RouterConfig(hostname="r")
        cfg.add_interface(
            Interface.with_address("Loopback0", "1.1.1.1/32", ospf_cost=1)
        )
        assert "ip ospf cost 1" in generate_cisco(cfg)

    def test_bgp_neighbor_order_is_deterministic(self):
        cfg = RouterConfig(hostname="r")
        bgp = cfg.ensure_bgp(100)
        bgp.add_neighbor(BgpNeighbor(ip=Ipv4Address.parse("9.0.0.2"), remote_as=9))
        bgp.add_neighbor(BgpNeighbor(ip=Ipv4Address.parse("1.0.0.2"), remote_as=1))
        text = generate_cisco(cfg)
        assert text.index("neighbor 1.0.0.2") < text.index("neighbor 9.0.0.2")

    def test_send_community_rendered(self):
        cfg = RouterConfig(hostname="r")
        bgp = cfg.ensure_bgp(100)
        bgp.add_neighbor(
            BgpNeighbor(
                ip=Ipv4Address.parse("1.0.0.2"), remote_as=1, send_community=True
            )
        )
        assert "send-community" in generate_cisco(cfg)

    def test_network_mask_form(self):
        cfg = RouterConfig(hostname="r")
        cfg.ensure_bgp(100).announce(Prefix.parse("1.2.3.0/24"))
        assert "network 1.2.3.0 mask 255.255.255.0" in generate_cisco(cfg)


class TestRoundTrip:
    def test_bundled_config_roundtrips_clean(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO)
        assert not first.warnings
        regenerated = generate_cisco(first.config)
        second = parse_cisco(regenerated)
        assert not second.warnings

    def test_roundtrip_preserves_bgp(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO).config
        second = parse_cisco(generate_cisco(first)).config
        assert set(second.bgp.neighbors) == set(first.bgp.neighbors)
        assert second.bgp.asn == first.bgp.asn
        assert second.bgp.networks == first.bgp.networks

    def test_roundtrip_preserves_route_maps(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO).config
        second = parse_cisco(generate_cisco(first)).config
        assert set(second.route_maps) == set(first.route_maps)
        for name, rm in first.route_maps.items():
            assert [c.seq for c in second.route_maps[name].clauses] == [
                c.seq for c in rm.clauses
            ]

    def test_roundtrip_preserves_prefix_list_ranges(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO).config
        second = parse_cisco(generate_cisco(first)).config
        ours = second.prefix_lists["our-networks"].entries[0].range
        assert (ours.low, ours.high) == (24, 32)

    def test_roundtrip_preserves_redistribution(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO).config
        second = parse_cisco(generate_cisco(first)).config
        assert len(second.bgp.redistributions) == 1
        assert second.bgp.redistributions[0].route_map == "ospf-into-bgp"

    def test_roundtrip_preserves_ospf(self):
        first = parse_cisco(BATFISH_EXAMPLE_CISCO).config
        second = parse_cisco(generate_cisco(first)).config
        assert second.ospf.passive_interfaces == first.ospf.passive_interfaces
        assert len(second.ospf.networks) == len(first.ospf.networks)

    def test_star_reference_configs_roundtrip_clean(self, star7_configs):
        for name, cfg in star7_configs.items():
            result = parse_cisco(generate_cisco(cfg), filename=name)
            assert not result.warnings, name

    def test_inline_community_roundtrips_as_warning(self):
        """A draft with the invalid inline form must re-emit it verbatim
        so the syntax verifier keeps seeing it."""
        text = "route-map M permit 10\n match community 100:1\n"
        config = parse_cisco(text).config
        regenerated = generate_cisco(config)
        assert "match community 100:1" in regenerated
        assert parse_cisco(regenerated).warnings
