"""Tests for the Cisco IOS parser."""

from repro.cisco import parse_cisco
from repro.netmodel import (
    Action,
    Community,
    MatchCommunityInline,
    MatchCommunityList,
    MatchPrefixList,
    Prefix,
    Protocol,
    SetCommunity,
    SetLocalPref,
    SetMed,
)


def _parse(text):
    return parse_cisco(text)


class TestHostnameAndInterfaces:
    def test_hostname(self):
        result = _parse("hostname r7\n")
        assert result.config.hostname == "r7"

    def test_hostname_missing_arg_warns(self):
        result = _parse("hostname\n")
        assert result.warnings

    def test_interface_address(self):
        result = _parse(
            "interface eth0/0\n ip address 2.0.0.1 255.255.255.0\n"
        )
        iface = result.config.get_interface("eth0/0")
        assert str(iface.address) == "2.0.0.1"
        assert str(iface.prefix) == "2.0.0.0/24"

    def test_interface_bad_address_warns(self):
        result = _parse("interface eth0\n ip address 999.0.0.1 255.255.255.0\n")
        assert result.warnings

    def test_interface_ospf_cost(self):
        result = _parse("interface Loopback0\n ip ospf cost 1\n")
        assert result.config.get_interface("Loopback0").ospf_cost == 1

    def test_interface_description(self):
        result = _parse("interface eth0\n description to provider AS 200\n")
        assert (
            result.config.get_interface("eth0").description
            == "to provider AS 200"
        )

    def test_interface_shutdown(self):
        result = _parse("interface eth0\n shutdown\n")
        assert result.config.get_interface("eth0").shutdown

    def test_interface_no_shutdown(self):
        result = _parse("interface eth0\n shutdown\n no shutdown\n")
        assert not result.config.get_interface("eth0").shutdown

    def test_unknown_interface_statement_warns(self):
        result = _parse("interface eth0\n mtu 9000\n")
        assert any("unrecognized" in w.comment for w in result.warnings)


class TestBgp:
    BASE = "router bgp 100\n"

    def test_asn(self):
        result = _parse(self.BASE)
        assert result.config.bgp.asn == 100

    def test_router_id(self):
        result = _parse(self.BASE + " bgp router-id 1.1.1.1\n")
        assert str(result.config.bgp.router_id) == "1.1.1.1"

    def test_neighbor_remote_as(self):
        result = _parse(self.BASE + " neighbor 2.3.4.5 remote-as 200\n")
        neighbor = result.config.bgp.get_neighbor("2.3.4.5")
        assert neighbor.remote_as == 200

    def test_neighbor_route_maps(self):
        text = (
            self.BASE
            + " neighbor 2.3.4.5 remote-as 200\n"
            + " neighbor 2.3.4.5 route-map IN_MAP in\n"
            + " neighbor 2.3.4.5 route-map OUT_MAP out\n"
        )
        neighbor = _parse(text).config.bgp.get_neighbor("2.3.4.5")
        assert neighbor.import_policy == "IN_MAP"
        assert neighbor.export_policy == "OUT_MAP"

    def test_neighbor_bad_direction_warns(self):
        text = (
            self.BASE
            + " neighbor 2.3.4.5 remote-as 200\n"
            + " neighbor 2.3.4.5 route-map M sideways\n"
        )
        assert _parse(text).warnings

    def test_neighbor_before_remote_as_warns(self):
        result = _parse(self.BASE + " neighbor 2.3.4.5 route-map M in\n")
        assert any("remote-as" in w.comment for w in result.warnings)

    def test_neighbor_send_community(self):
        text = (
            self.BASE
            + " neighbor 2.3.4.5 remote-as 200\n"
            + " neighbor 2.3.4.5 send-community\n"
        )
        assert _parse(text).config.bgp.get_neighbor("2.3.4.5").send_community

    def test_network_with_mask(self):
        result = _parse(self.BASE + " network 1.2.3.0 mask 255.255.255.0\n")
        assert result.config.bgp.announces(Prefix.parse("1.2.3.0/24"))

    def test_network_cidr(self):
        result = _parse(self.BASE + " network 1.2.3.0/25\n")
        assert result.config.bgp.announces(Prefix.parse("1.2.3.0/25"))

    def test_redistribute_with_route_map(self):
        result = _parse(self.BASE + " redistribute ospf route-map O2B\n")
        (redis,) = result.config.bgp.redistributions
        assert redis.protocol is Protocol.OSPF
        assert redis.route_map == "O2B"

    def test_redistribute_connected_without_map(self):
        result = _parse(self.BASE + " redistribute connected\n")
        (redis,) = result.config.bgp.redistributions
        assert redis.protocol is Protocol.CONNECTED
        assert redis.route_map is None

    def test_redistribute_unknown_protocol_warns(self):
        assert _parse(self.BASE + " redistribute rip\n").warnings


class TestOspf:
    def test_network_statement(self):
        result = _parse(
            "router ospf 1\n network 1.2.3.0 0.0.0.255 area 0\n"
        )
        (stmt,) = result.config.ospf.networks
        assert str(stmt.prefix) == "1.2.3.0/24"
        assert stmt.area == 0

    def test_host_network_statement(self):
        result = _parse("router ospf 1\n network 1.1.1.1 0.0.0.0 area 0\n")
        assert str(result.config.ospf.networks[0].prefix) == "1.1.1.1/32"

    def test_passive_interface(self):
        result = _parse("router ospf 1\n passive-interface Loopback0\n")
        assert result.config.ospf.is_passive("Loopback0")

    def test_router_id(self):
        result = _parse("router ospf 1\n router-id 1.1.1.1\n")
        assert str(result.config.ospf.router_id) == "1.1.1.1"


class TestPrefixLists:
    def test_exact(self):
        result = _parse("ip prefix-list p seq 5 permit 1.2.3.0/24\n")
        (entry,) = result.config.prefix_lists["p"].entries
        assert entry.range.is_exact()
        assert entry.seq == 5

    def test_ge_widens_to_32(self):
        result = _parse("ip prefix-list p seq 5 permit 1.2.3.0/24 ge 24\n")
        (entry,) = result.config.prefix_lists["p"].entries
        assert (entry.range.low, entry.range.high) == (24, 32)

    def test_ge_le_band(self):
        result = _parse("ip prefix-list p permit 10.0.0.0/8 ge 16 le 24\n")
        (entry,) = result.config.prefix_lists["p"].entries
        assert (entry.range.low, entry.range.high) == (16, 24)

    def test_le_alone(self):
        result = _parse("ip prefix-list p permit 10.0.0.0/8 le 24\n")
        (entry,) = result.config.prefix_lists["p"].entries
        assert (entry.range.low, entry.range.high) == (8, 24)

    def test_deny_entry(self):
        result = _parse("ip prefix-list p seq 5 deny 0.0.0.0/0 le 32\n")
        (entry,) = result.config.prefix_lists["p"].entries
        assert entry.action == "deny"

    def test_invalid_band_warns(self):
        result = _parse("ip prefix-list p permit 1.2.3.0/24 ge 20\n")
        assert result.warnings

    def test_missing_action_warns(self):
        assert _parse("ip prefix-list p 1.2.3.0/24\n").warnings

    def test_multiple_entries_accumulate(self):
        text = (
            "ip prefix-list p seq 5 permit 1.0.0.0/8\n"
            "ip prefix-list p seq 10 permit 2.0.0.0/8\n"
        )
        assert len(_parse(text).config.prefix_lists["p"].entries) == 2


class TestCommunityLists:
    def test_numbered_standard(self):
        result = _parse("ip community-list 1 permit 100:1\n")
        clist = result.config.community_lists["1"]
        assert clist.permits([Community(100, 1)])

    def test_named_standard(self):
        result = _parse("ip community-list standard TAGS permit 100:1\n")
        assert "TAGS" in result.config.community_lists

    def test_expanded_regex(self):
        result = _parse("ip community-list expanded E permit 100:.*\n")
        assert result.config.community_lists["E"].permits([Community(100, 9)])

    def test_invalid_value_warns(self):
        """§4.2's Table 3 example: '... permit .+' is wrong syntax for a
        standard community list."""
        result = _parse("ip community-list standard COMM permit .+\n")
        assert any("wrong syntax" in w.comment for w in result.warnings)


class TestRouteMaps:
    def test_clause_action_and_seq(self):
        result = _parse("route-map M deny 100\n")
        clause = result.config.route_maps["M"].get_clause(100)
        assert clause.action is Action.DENY

    def test_match_prefix_list(self):
        result = _parse(
            "route-map M permit 10\n match ip address prefix-list nets\n"
        )
        (condition,) = result.config.route_maps["M"].clauses[0].matches
        assert condition == MatchPrefixList("nets")

    def test_match_community_list(self):
        result = _parse("route-map M permit 10\n match community 1\n")
        (condition,) = result.config.route_maps["M"].clauses[0].matches
        assert condition == MatchCommunityList("1")

    def test_match_community_inline_warns(self):
        """The §4.2 'Match Community' pitfall: a literal value is invalid."""
        result = _parse("route-map M permit 10\n match community 100:1\n")
        (condition,) = result.config.route_maps["M"].clauses[0].matches
        assert condition == MatchCommunityInline(Community(100, 1))
        assert any("community-list name" in w.comment for w in result.warnings)

    def test_multiple_match_statements_in_stanza(self):
        """AND semantics input form: several matches in one stanza parse
        into one clause (the §4.2 trap)."""
        text = (
            "route-map F deny 10\n"
            " match community 2\n"
            " match community 3\n"
        )
        clause = _parse(text).config.route_maps["F"].clauses[0]
        assert len(clause.matches) == 2

    def test_set_community_additive(self):
        result = _parse(
            "route-map M permit 10\n set community 100:1 additive\n"
        )
        (action,) = result.config.route_maps["M"].clauses[0].sets
        assert action == SetCommunity((Community(100, 1),), additive=True)

    def test_set_community_non_additive(self):
        result = _parse("route-map M permit 10\n set community 100:1\n")
        (action,) = result.config.route_maps["M"].clauses[0].sets
        assert not action.additive

    def test_set_metric(self):
        result = _parse("route-map M permit 10\n set metric 50\n")
        assert result.config.route_maps["M"].clauses[0].sets == [SetMed(50)]

    def test_set_local_preference(self):
        result = _parse("route-map M permit 10\n set local-preference 250\n")
        assert result.config.route_maps["M"].clauses[0].sets == [
            SetLocalPref(250)
        ]

    def test_clauses_accumulate_across_stanzas(self):
        text = "route-map M permit 10\nroute-map M deny 20\n"
        assert len(_parse(text).config.route_maps["M"].clauses) == 2

    def test_unknown_match_warns(self):
        result = _parse("route-map M permit 10\n match interface eth0\n")
        assert result.warnings

    def test_unknown_set_warns(self):
        result = _parse("route-map M permit 10\n set weight 100\n")
        assert result.warnings


class TestWarningsAndMisplacement:
    def test_forbidden_cli_keywords_warn(self):
        for keyword in ("exit", "end", "write", "configure terminal", "conf t"):
            result = _parse(keyword + "\n")
            assert any(
                "Interactive CLI" in w.comment for w in result.warnings
            ), keyword

    def test_ip_routing_warns(self):
        result = _parse("ip routing\n")
        assert result.warnings

    def test_misplaced_neighbor_command_warns_generically(self):
        """§4.2: a neighbor command outside router bgp gets a warning
        whose text is deliberately uninformative."""
        result = _parse("neighbor 1.0.0.2 route-map F out\n")
        (warning,) = result.warnings
        assert "unrecognized at this location" in warning.comment

    def test_unknown_top_level_warns(self):
        assert _parse("banner motd hello\n").warnings

    def test_forbidden_keyword_resets_block_context(self):
        """After 'exit', a match line is no longer in the route-map."""
        text = "route-map M permit 10\nexit\n match community 1\n"
        result = _parse(text)
        assert result.config.route_maps["M"].clauses[0].matches == []

    def test_parser_never_raises_on_garbage(self):
        result = _parse("%$#@!\nqwerty uiop\n   indented junk\n")
        assert result.config is not None

    def test_clean_parse_has_no_warnings(self, source_config):
        # The bundled experiment config parses clean (fixture exercises it).
        assert source_config.hostname == "as100border1"
