"""Negative-path coverage for the Cisco parser: every malformed input
must degrade to a warning, never an exception."""

from hypothesis import given, strategies as st

from repro.cisco import parse_cisco


def _warns(text):
    result = parse_cisco(text)
    assert result.warnings, f"expected warnings for {text!r}"
    return result


class TestMalformedBlocks:
    def test_interface_without_name(self):
        _warns("interface\n")

    def test_router_bgp_without_asn(self):
        _warns("router bgp\n")

    def test_router_bgp_bad_asn(self):
        _warns("router bgp banana\n")

    def test_route_map_invalid_action(self):
        _warns("route-map M maybe 10\n")

    def test_route_map_header_too_short(self):
        _warns("route-map M\n")

    def test_route_map_bad_seq_defaults(self):
        result = parse_cisco("route-map M permit x\n")
        # Bad sequence warns but the clause still lands at the default.
        assert result.warnings
        assert result.config.route_maps["M"].get_clause(10) is not None


class TestMalformedNeighbors:
    def test_incomplete_neighbor(self):
        _warns("router bgp 1\n neighbor 1.0.0.2\n")

    def test_bad_neighbor_address(self):
        _warns("router bgp 1\n neighbor one.two remote-as 2\n")

    def test_bad_remote_as(self):
        _warns("router bgp 1\n neighbor 1.0.0.2 remote-as two\n")

    def test_unknown_neighbor_statement(self):
        _warns(
            "router bgp 1\n neighbor 1.0.0.2 remote-as 2\n"
            " neighbor 1.0.0.2 frobnicate\n"
        )

    def test_bad_network(self):
        _warns("router bgp 1\n network 999.0.0.0 mask 255.0.0.0\n")


class TestMalformedLists:
    def test_prefix_list_incomplete(self):
        _warns("ip prefix-list\n")

    def test_prefix_list_bad_prefix(self):
        _warns("ip prefix-list p permit not-a-prefix\n")

    def test_prefix_list_bad_seq(self):
        _warns("ip prefix-list p seq x permit 1.0.0.0/8\n")

    def test_prefix_list_unknown_modifier(self):
        _warns("ip prefix-list p permit 1.0.0.0/8 around 12\n")

    def test_community_list_incomplete(self):
        _warns("ip community-list 1\n")

    def test_community_list_bad_action(self):
        _warns("ip community-list 1 allow 100:1\n")

    def test_as_path_list_incomplete(self):
        _warns("ip as-path access-list 1 permit\n")

    def test_as_path_list_bad_action(self):
        _warns("ip as-path access-list 1 allow 100 extra\n")

    def test_acl_incomplete(self):
        _warns("access-list 10\n")

    def test_acl_bad_action(self):
        _warns("access-list 10 allow 1.0.0.0\n")

    def test_acl_bad_address(self):
        _warns("access-list 10 permit 999.0.0.0 0.0.0.255\n")

    def test_named_acl_without_name(self):
        _warns("ip access-list standard\n")


class TestOspfNegative:
    def test_bad_ospf_network(self):
        _warns("router ospf 1\n network bad 0.0.0.255 area 0\n")

    def test_bad_area(self):
        _warns("router ospf 1\n network 1.0.0.0 0.0.0.255 area x\n")

    def test_unknown_ospf_statement(self):
        _warns("router ospf 1\n auto-cost banana\n")


class TestFuzzNeverRaises:
    @given(st.text(max_size=400))
    def test_arbitrary_text(self, text):
        parse_cisco(text)

    @given(
        st.lists(
            st.sampled_from(
                [
                    "interface eth0",
                    " ip address 1.0.0.1 255.255.255.0",
                    "router bgp 1",
                    " neighbor 1.0.0.2 remote-as 2",
                    "route-map M permit 10",
                    " match community 1",
                    " set metric 5",
                    "exit",
                    "neighbor 9.9.9.9 route-map X out",
                    "ip prefix-list p permit 1.0.0.0/8 ge 9",
                    "!",
                ]
            ),
            max_size=20,
        )
    )
    def test_shuffled_fragments(self, lines):
        """Any interleaving of config fragments parses without raising."""
        parse_cisco("\n".join(lines) + "\n")
