"""Each synthesis fault must manifest exactly its documented error."""

import pytest

from repro.cisco import generate_cisco, parse_cisco
from repro.lightyear import no_transit_invariants, verify_invariants
from repro.llm import (
    IIP_SUPPRESSED_FAULTS,
    default_fault_assignment,
    make_synthesis_model,
    synthesis_fault_catalog,
)
from repro.llm.faults import DraftState
from repro.topology import verify_topology
from repro.topology.reference import build_reference_configs


@pytest.fixture()
def catalog(star7):
    return synthesis_fault_catalog(star7.topology)


def _draft(star7, router, catalog, *keys):
    references = build_reference_configs(star7.topology)
    draft = DraftState(references[router], generate_cisco)
    for key in keys:
        draft.inject(catalog[key])
    return draft


def _topology_issues(star7, router, draft):
    parsed = parse_cisco(draft.render())
    return verify_topology(parsed.config, star7.topology.router(router))


class TestSyntaxFaults:
    def test_cli_keywords_warn(self, star7, catalog):
        draft = _draft(star7, "R2", catalog, "cli_keywords")
        warnings = parse_cisco(draft.render()).warnings
        assert any("Interactive CLI" in w.comment for w in warnings)

    def test_inline_match_community_warns(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "inline_match_community")
        warnings = parse_cisco(draft.render()).warnings
        assert any("community-list name" in w.comment for w in warnings)

    def test_misplaced_neighbor_command_warns_generically(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "misplaced_neighbor_command")
        warnings = parse_cisco(draft.render()).warnings
        assert any(
            "unrecognized at this location" in w.comment
            and "FILTER_COMM_OUT_R7" in w.text
            for w in warnings
        )


class TestTopologyFaults:
    @pytest.mark.parametrize(
        "router,key,needle",
        [
            ("R1", "wrong_interface_ip", "Interface eth0/2 ip address"),
            ("R3", "wrong_local_as", "Local AS number"),
            ("R2", "wrong_router_id", "Router ID"),
            ("R2", "missing_neighbor", "Neighbor with IP address 1.0.0.1"),
            ("R2", "missing_network", "Network 1.0.0.0/24 not declared"),
            ("R1", "extra_network", "Incorrect network declaration"),
            ("R1", "extra_neighbor", "Incorrect neighbor declaration"),
        ],
    )
    def test_fault_detected_by_topology_verifier(
        self, star7, catalog, router, key, needle
    ):
        draft = _draft(star7, router, catalog, key)
        issues = _topology_issues(star7, router, draft)
        assert any(needle in issue.message for issue in issues), key

    def test_extra_neighbor_matches_table3_fields(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "extra_neighbor")
        issues = _topology_issues(star7, "R1", draft)
        assert any("7.0.0.2 AS 7" in issue.message for issue in issues)


class TestSemanticFaults:
    def _violations(self, star7, draft):
        parsed = parse_cisco(draft.render())
        invariants = no_transit_invariants(star7.topology)
        return verify_invariants({"R1": parsed.config}, invariants)

    def test_and_or_semantics_violates_egress_invariant(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "and_or_semantics")
        violations = self._violations(star7, draft)
        assert any(
            v.policy_name == "FILTER_COMM_OUT_R2" for v in violations
        )

    def test_egress_permits_tagged(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "egress_permits_tagged")
        violations = self._violations(star7, draft)
        assert any(
            v.policy_name == "FILTER_COMM_OUT_R4" for v in violations
        )

    def test_missing_ingress_tag(self, star7, catalog):
        draft = _draft(star7, "R1", catalog, "missing_ingress_tag")
        violations = self._violations(star7, draft)
        assert any("ADD_COMM_R5" in v.message for v in violations)

    def test_reference_draft_has_no_violations(self, star7, catalog):
        draft = _draft(star7, "R1", catalog)
        assert self._violations(star7, draft) == []


class TestAssignmentAndIips:
    def test_default_assignment_covers_all_routers(self, star7):
        assignment = default_fault_assignment(7)
        assert set(assignment) == {f"R{i}" for i in range(1, 8)}

    def test_hub_carries_policy_faults(self):
        assignment = default_fault_assignment(7)
        assert "and_or_semantics" in assignment["R1"]
        assert "misplaced_neighbor_command" in assignment["R1"]

    def test_small_networks_rejected(self):
        with pytest.raises(ValueError):
            default_fault_assignment(3)

    def test_iip_suppression(self, star7):
        with_iips = make_synthesis_model(
            "R1", star7.topology, iip_ids=IIP_SUPPRESSED_FAULTS.values()
        )
        with_iips.send("generate R1")
        suppressed = set(IIP_SUPPRESSED_FAULTS)
        assert not (suppressed & set(with_iips.active_fault_keys()))

    def test_no_iips_means_more_faults(self, star7):
        bare = make_synthesis_model("R1", star7.topology, iip_ids=())
        bare.send("generate R1")
        assert "cli_keywords" in bare.active_fault_keys()

    def test_unknown_router_raises(self, star7):
        with pytest.raises(KeyError):
            make_synthesis_model("R99", star7.topology)

    def test_per_router_seeds_differ(self, star7):
        a = make_synthesis_model("R2", star7.topology, seed=0)
        b = make_synthesis_model("R3", star7.topology, seed=0)
        assert a._rng.random() != b._rng.random()
