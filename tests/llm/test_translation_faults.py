"""Each translation fault must manifest exactly its documented error."""

import pytest

from repro.campion import compare_configs
from repro.juniper import generate_juniper, parse_juniper
from repro.llm import (
    DEFAULT_INITIAL_FAULTS,
    make_translation_model,
    translation_fault_catalog,
)
from repro.llm.faults import DraftState
from repro.llm.translation_model import reference_translation
from repro.sampleconfigs import load_translation_source


@pytest.fixture()
def catalog():
    return translation_fault_catalog()


def _draft_with(catalog, *keys):
    draft = DraftState(reference_translation(), generate_juniper)
    for key in keys:
        draft.inject(catalog[key])
    return draft


def _verify(draft):
    """Parse + campion the draft; return (warnings, report)."""
    parsed = parse_juniper(draft.render())
    report = compare_configs(
        load_translation_source(), parsed.config, stop_at_first_class=False
    )
    return parsed.warnings, report


class TestFaultManifestations:
    def test_clean_draft_verifies(self, catalog):
        warnings, report = _verify(_draft_with(catalog))
        assert not warnings
        assert report.clean

    def test_missing_local_as_is_parse_warning(self, catalog):
        warnings, _ = _verify(_draft_with(catalog, "missing_local_as"))
        assert any("local AS" in w.comment for w in warnings)

    def test_stray_statement_is_parse_warning(self, catalog):
        warnings, _ = _verify(_draft_with(catalog, "stray_statement"))
        assert any("maximum-paths" in w.text for w in warnings)

    def test_missing_export_policy_is_structural(self, catalog):
        warnings, report = _verify(_draft_with(catalog, "missing_export_policy"))
        assert not warnings
        assert any(
            "export route map" in f.describe() and "2.3.4.5" in f.describe()
            for f in report.structural
        )

    def test_extra_export_policy_is_structural(self, catalog):
        _, report = _verify(_draft_with(catalog, "extra_export_policy"))
        assert any("1.2.3.9" in f.describe() for f in report.structural)

    def test_ospf_cost_is_attribute(self, catalog):
        _, report = _verify(_draft_with(catalog, "ospf_cost_difference"))
        assert any("cost set to" in f.describe() for f in report.attributes)

    def test_ospf_passive_is_attribute(self, catalog):
        _, report = _verify(_draft_with(catalog, "ospf_passive_difference"))
        assert any("passive" in f.describe() for f in report.attributes)

    def test_wrong_med_is_policy_transform(self, catalog):
        _, report = _verify(_draft_with(catalog, "wrong_med"))
        assert any("MED" in f.transform_detail for f in report.policies)

    def test_dropped_ge_range_found_at_longer_prefix(self, catalog):
        _, report = _verify(_draft_with(catalog, "dropped_ge_range"))
        assert any(
            f.example_prefix.length > 24 for f in report.policies
        )

    def test_redistribution_unguarded_is_redistribution_diff(self, catalog):
        _, report = _verify(_draft_with(catalog, "redistribution_unguarded"))
        assert any("redistribution" in f.direction for f in report.policies)

    def test_invalid_prefix_list_syntax_is_table1_warning(self, catalog):
        warnings, _ = _verify(_draft_with(catalog, "invalid_prefix_list_syntax"))
        assert any(
            "There is a syntax error" in w.comment and "24-32" in w.text
            for w in warnings
        )

    def test_all_faults_are_reversible(self, catalog):
        draft = _draft_with(catalog, *DEFAULT_INITIAL_FAULTS)
        for key in list(DEFAULT_INITIAL_FAULTS):
            draft.repair(key)
        warnings, report = _verify(draft)
        assert not warnings
        assert report.clean


class TestCatalogConsistency:
    def test_initial_faults_exist_in_catalog(self, catalog):
        for key in DEFAULT_INITIAL_FAULTS:
            assert key in catalog

    def test_successor_exists(self, catalog):
        assert catalog["dropped_ge_range"].successor_key in catalog

    def test_unfixable_faults_have_human_prompts(self, catalog):
        for fault in catalog.values():
            if not fault.fixable_by_generated_prompt:
                assert fault.human_prompt
                assert fault.human_prompt_patterns

    def test_human_prompts_match_own_patterns(self, catalog):
        for fault in catalog.values():
            if fault.human_prompt:
                assert fault.matches_human(fault.human_prompt), fault.key

    def test_table2_labels_present(self, catalog):
        labels = {fault.label for fault in catalog.values()}
        expected = {
            "Missing BGP local-as attribute",
            "Invalid syntax for prefix lists",
            "Missing/extra BGP route policy",
            "Different OSPF link cost",
            "Different OSPF passive interface setting",
            "Setting wrong BGP MED value",
            "Different prefix lengths match in BGP",
            "Different redistribution into BGP",
        }
        assert expected <= labels


class TestModelFactory:
    def test_initial_draft_contains_all_faults(self):
        model = make_translation_model(seed=0)
        model.send("Translate the configuration into Juniper.")
        assert set(model.active_fault_keys()) == set(DEFAULT_INITIAL_FAULTS)

    def test_narrowed_fault_set(self):
        model = make_translation_model(seed=0, initial_faults=("wrong_med",))
        model.send("translate")
        assert model.active_fault_keys() == ["wrong_med"]
