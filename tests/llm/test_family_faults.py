"""Every fault must actually manifest on every topology family.

Fault transforms address concrete artifacts (a neighbor IP, a route-map
name, an interface).  Historically those addresses were star literals,
so injecting e.g. ``missing_neighbor`` into a chain draft silently
no-opped and every downstream check passed vacuously.  These tests pin
the family-dispatched addressing: for each (family, fault) pair the
fault either visibly corrupts its designated router's draft, or raises
:class:`FaultTargetError` — it never disappears.
"""

import pytest

from repro.cisco import generate_cisco
from repro.llm import fault_designations, synthesis_fault_catalog
from repro.llm.faults import DraftState, FaultTargetError
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

FAMILIES = ["star", "chain", "ring", "mesh", "dumbbell"]
SIZE = 7  # large enough that every fault key has a designated carrier

FAULT_KEYS = [
    "cli_keywords",
    "stray_ip_routing",
    "inline_match_community",
    "misplaced_neighbor_command",
    "wrong_interface_ip",
    "wrong_local_as",
    "wrong_router_id",
    "missing_neighbor",
    "missing_network",
    "extra_network",
    "extra_neighbor",
    "and_or_semantics",
    "egress_permits_tagged",
    "missing_ingress_tag",
    "non_additive_set_community",
]


@pytest.fixture(scope="module", params=FAMILIES)
def family_setup(request):
    network = generate_network(request.param, SIZE)
    topology = network.topology
    return (
        request.param,
        topology,
        synthesis_fault_catalog(topology),
        fault_designations(topology),
        build_reference_configs(topology),
    )


def test_catalog_is_complete(family_setup):
    _, _, catalog, _, _ = family_setup
    assert sorted(catalog) == sorted(FAULT_KEYS)


def test_every_fault_has_a_designated_carrier(family_setup):
    family, _, _, designations, _ = family_setup
    missing = set(FAULT_KEYS) - set(designations)
    assert not missing, f"{family}: no carrier for {sorted(missing)}"


@pytest.mark.parametrize("key", FAULT_KEYS)
def test_fault_manifests_on_designated_router(family_setup, key):
    family, _, catalog, designations, references = family_setup
    router = designations[key]
    clean = DraftState(references[router], generate_cisco).render()
    draft = DraftState(references[router], generate_cisco)
    draft.inject(catalog[key])
    corrupted = draft.render()
    assert corrupted != clean, (
        f"{key} silently no-ops on {family} router {router}"
    )


@pytest.mark.parametrize(
    "key",
    [
        "missing_neighbor",
        "missing_network",
        "wrong_interface_ip",
        "and_or_semantics",
        "missing_ingress_tag",
    ],
)
def test_misassigned_fault_raises_instead_of_noop(family_setup, key):
    """Injected into a router that lacks the target, the transform must
    raise — the customer-attached R1 (or for R1's own faults, the last
    router) has none of these artifacts' policy targets."""
    family, topology, catalog, designations, references = family_setup
    designated = designations[key]
    # Pick some router that is not the designated carrier.
    victim = next(
        name
        for name in reversed(topology.router_names())
        if name != designated
    )
    draft = DraftState(references[victim], generate_cisco)
    draft.inject(catalog[key])
    try:
        corrupted = draft.render()
    except FaultTargetError:
        return  # the documented loud failure
    # A few faults are legitimately addressable on other routers
    # (e.g. every router has an internal neighbor to drop) — then the
    # draft must actually differ.
    clean = DraftState(references[victim], generate_cisco).render()
    assert corrupted != clean, (
        f"{key} neither raised nor manifested on {family} router {victim}"
    )
