"""Tests for the fault framework and draft state."""

from repro.cisco import generate_cisco
from repro.errors import ErrorCategory
from repro.llm import DraftState, Fault
from repro.netmodel import RouterConfig


def _noop_fault(key="f1", **kwargs):
    defaults = dict(
        key=key,
        label="test fault",
        category=ErrorCategory.SYNTAX,
        fixable_by_generated_prompt=True,
        prompt_patterns=(r"fix it",),
    )
    defaults.update(kwargs)
    return Fault(**defaults)


def _hostname_fault():
    def transform(config: RouterConfig) -> None:
        config.hostname = "WRONG"

    return _noop_fault(key="hostname", ir_transform=transform)


def _text_fault():
    return _noop_fault(
        key="text", text_transform=lambda text: "garbage\n" + text
    )


class TestFaultMatching:
    def test_matches_generated(self):
        fault = _noop_fault(prompt_patterns=(r"syntax error", r"cost"))
        assert fault.matches_generated("There is a SYNTAX ERROR here")
        assert not fault.matches_generated("all good")

    def test_matches_human(self):
        fault = _noop_fault(human_prompt_patterns=(r"from bgp",))
        assert fault.matches_human("please add a 'from bgp' condition")
        assert not fault.matches_human("anything else")

    def test_no_human_patterns_never_match(self):
        assert not _noop_fault().matches_human("anything")


class TestDraftState:
    def _draft(self):
        config = RouterConfig(hostname="r1")
        return DraftState(config, generate_cisco)

    def test_pristine_render(self):
        draft = self._draft()
        assert "hostname r1" in draft.render()
        assert draft.clean

    def test_ir_fault_applied_on_render(self):
        draft = self._draft()
        draft.inject(_hostname_fault())
        assert "hostname WRONG" in draft.render()
        assert not draft.clean

    def test_text_fault_applied_after_render(self):
        draft = self._draft()
        draft.inject(_text_fault())
        assert draft.render().startswith("garbage")

    def test_repair_restores_pristine(self):
        draft = self._draft()
        draft.inject(_hostname_fault())
        draft.repair("hostname")
        assert "hostname r1" in draft.render()
        assert draft.clean

    def test_pristine_never_mutated(self):
        draft = self._draft()
        fault = _hostname_fault()
        draft.inject(fault)
        draft.render()
        draft.repair("hostname")
        draft.inject(fault)
        assert "hostname WRONG" in draft.render()
        draft.repair("hostname")
        assert "hostname r1" in draft.render()

    def test_fixed_faults_tracked(self):
        draft = self._draft()
        fault = _hostname_fault()
        draft.inject(fault)
        draft.repair("hostname")
        assert [f.key for f in draft.fixed_faults()] == ["hostname"]

    def test_reintroduce_moves_back_to_active(self):
        draft = self._draft()
        fault = _hostname_fault()
        draft.inject(fault)
        draft.repair("hostname")
        draft.reintroduce(fault)
        assert draft.is_active("hostname")
        assert draft.fixed_faults() == []

    def test_repair_unknown_returns_none(self):
        assert self._draft().repair("ghost") is None

    def test_multiple_faults_compose(self):
        draft = self._draft()
        draft.inject(_hostname_fault())
        draft.inject(_text_fault())
        text = draft.render()
        assert text.startswith("garbage")
        assert "hostname WRONG" in text

    def test_current_config_reflects_ir_faults_only(self):
        draft = self._draft()
        draft.inject(_text_fault())
        assert draft.current_config().hostname == "r1"
