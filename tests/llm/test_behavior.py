"""Tests for the correction behaviour model."""

import random
from collections import Counter

import pytest

from repro.llm import BehaviorProfile, CorrectionOutcome, sample_outcome


class TestBehaviorProfile:
    def test_default_sums_to_one(self):
        BehaviorProfile()  # __post_init__ validates

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            BehaviorProfile(fix=0.5, no_change=0.1,
                            fix_with_new_error=0.1, fix_with_regression=0.1)

    def test_always_fix(self):
        rng = random.Random(0)
        profile = BehaviorProfile.always_fix()
        outcomes = {sample_outcome(rng, profile) for _ in range(50)}
        assert outcomes == {CorrectionOutcome.FIX}

    def test_never_fix(self):
        rng = random.Random(0)
        profile = BehaviorProfile.never_fix()
        outcomes = {sample_outcome(rng, profile) for _ in range(50)}
        assert outcomes == {CorrectionOutcome.NO_CHANGE}

    def test_sampling_is_seed_deterministic(self):
        profile = BehaviorProfile()
        first = [
            sample_outcome(random.Random(7), profile) for _ in range(1)
        ]
        second = [
            sample_outcome(random.Random(7), profile) for _ in range(1)
        ]
        assert first == second

    def test_distribution_roughly_matches(self):
        rng = random.Random(123)
        profile = BehaviorProfile()
        counts = Counter(sample_outcome(rng, profile) for _ in range(5000))
        assert counts[CorrectionOutcome.FIX] / 5000 == pytest.approx(
            profile.fix, abs=0.05
        )
        assert counts[CorrectionOutcome.NO_CHANGE] / 5000 == pytest.approx(
            profile.no_change, abs=0.03
        )

    def test_all_outcomes_reachable(self):
        rng = random.Random(99)
        profile = BehaviorProfile()
        outcomes = {sample_outcome(rng, profile) for _ in range(2000)}
        assert outcomes == set(CorrectionOutcome)
