"""Tests for the SimulatedGPT4 chat engine."""

import pytest

from repro.llm import (
    BehaviorProfile,
    make_translation_model,
)


def _model(**kwargs):
    defaults = dict(seed=0, initial_faults=("wrong_med",))
    defaults.update(kwargs)
    return make_translation_model(**defaults)


class TestChatFlow:
    def test_first_prompt_yields_draft(self):
        model = _model()
        text = model.send("Translate the configuration.")
        assert "policy-statement" in text
        assert model.stats.drafts == 1

    def test_draft_before_send_raises(self):
        model = _model()
        with pytest.raises(RuntimeError):
            model.draft

    def test_transcript_records_both_sides(self):
        model = _model()
        model.send("Translate.")
        model.send("fix the MED")
        assert model.transcript.prompt_count() == 2
        assert model.transcript.last_response()

    def test_unmatched_prompt_is_noop(self):
        model = _model()
        before = model.send("Translate.")
        after = model.send("please write a poem about BGP")
        assert before == after
        assert model.stats.unmatched == 1


class TestCorrections:
    def test_matching_prompt_fixes_with_always_fix(self):
        model = _model(profile=BehaviorProfile.always_fix())
        model.send("Translate.")
        model.send("the translation sets MED to 0 but the original sets MED to 50")
        assert model.active_fault_keys() == []
        assert model.resolution_log == [("wrong_med", "generated")]

    def test_never_fix_leaves_fault(self):
        model = _model(profile=BehaviorProfile.never_fix())
        model.send("Translate.")
        model.send("wrong MED value")
        assert model.active_fault_keys() == ["wrong_med"]
        assert model.stats.no_changes == 1

    def test_unfixable_fault_ignores_generated_prompt(self):
        model = _model(
            initial_faults=("redistribution_unguarded",),
            profile=BehaviorProfile.always_fix(),
        )
        model.send("Translate.")
        model.send("there is a redistribution difference for prefix 1.2.3.0/24")
        assert model.active_fault_keys() == ["redistribution_unguarded"]
        assert model.stats.stubborn_no_changes == 1

    def test_unfixable_fault_yields_to_human_prompt(self):
        model = _model(initial_faults=("redistribution_unguarded",))
        model.send("Translate.")
        model.send("Add a 'from bgp' condition to the existing terms.")
        assert model.active_fault_keys() == []
        assert model.resolution_log == [("redistribution_unguarded", "human")]

    def test_successor_transition(self):
        """ge-range human fix introduces the invalid /24-32 syntax, which
        the next generated syntax prompt then repairs (§3.2's story)."""
        model = _model(
            initial_faults=("dropped_ge_range",),
            profile=BehaviorProfile.always_fix(),
        )
        model.send("Translate.")
        draft = model.send(
            "Use a route-filter with prefix-length-range /24-/32 instead."
        )
        assert model.active_fault_keys() == ["invalid_prefix_list_syntax"]
        assert "1.2.3.0/24-32" in draft
        final = model.send(
            "There is a syntax error: "
            "'policy-options prefix-list our-networks 1.2.3.0/24-32'"
        )
        assert model.active_fault_keys() == []
        assert "24-32" not in final
        assert "prefix-length-range /24-/32" in final or "orlonger" in final

    def test_new_error_outcome_injects_side_fault(self):
        profile = BehaviorProfile(
            fix=0.0, no_change=0.0, fix_with_new_error=1.0,
            fix_with_regression=0.0,
        )
        model = _model(profile=profile)
        model.send("Translate.")
        model.send("fix the MED difference")
        assert "wrong_med" not in model.active_fault_keys()
        assert model.stats.new_errors == 1
        assert model.active_fault_keys()  # a side fault appeared

    def test_regression_outcome_reintroduces_fixed_fault(self):
        profile = BehaviorProfile(
            fix=0.0, no_change=0.0, fix_with_new_error=0.0,
            fix_with_regression=1.0,
        )
        model = make_translation_model(
            seed=0,
            profile=profile,
            initial_faults=("wrong_med", "ospf_cost_difference"),
        )
        model.send("Translate.")
        model.send("the MED value is wrong")  # fixes med, nothing to regress yet?
        # First fix has no previously fixed fixable fault other than itself.
        model.send("the OSPF link cost set to 1 vs 0")
        # Fixing cost regresses med.
        assert "wrong_med" in model.active_fault_keys()
        assert model.stats.regressions >= 1

    def test_seed_determinism(self):
        first = make_translation_model(seed=42)
        second = make_translation_model(seed=42)
        prompts = ["Translate.", "fix the MED", "fix the passive interface"]
        outputs_first = [first.send(p) for p in prompts]
        outputs_second = [second.send(p) for p in prompts]
        assert outputs_first == outputs_second
