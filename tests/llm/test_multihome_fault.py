"""The role-aware fault family: one home of a multi-homed ISP drops the
shared community.

The multi-homed no-transit argument is per-ISP, not per-border-router:
every home of ``ISP_j`` must tag with the same community slot.  The
``multihome_untagged_home`` fault breaks exactly one home's tagging —
the failure mode only a role assignment can address — and follows the
established dispatch contract: it exists only in catalogs of topologies
that actually have a multi-homed group, and injected anywhere without
its target it raises :class:`FaultTargetError` instead of no-opping.
"""

import pytest

from repro.cisco import generate_cisco
from repro.llm import (
    MULTIHOME_FAULT_KEY,
    fault_designations,
    multihome_fault_target,
    synthesis_fault_catalog,
)
from repro.llm.faults import DraftState, FaultTargetError
from repro.netmodel.routing_policy import Action
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs
from repro.topology.roles import RoleAssignment

SEEDED_FAMILIES = ["random", "waxman"]
SIZE = 8
ROLES = "c1i2h2"  # two ISPs, two homes each: multi-homed by construction


@pytest.fixture(scope="module", params=SEEDED_FAMILIES)
def multihomed_setup(request):
    network = generate_network(request.param, SIZE, seed=1, roles=ROLES)
    topology = network.topology
    return (
        request.param,
        topology,
        synthesis_fault_catalog(topology),
        fault_designations(topology),
        build_reference_configs(topology),
    )


class TestCatalogDispatch:
    def test_fault_present_only_with_a_multihomed_group(self, multihomed_setup):
        _, topology, catalog, _, _ = multihomed_setup
        assert MULTIHOME_FAULT_KEY in catalog
        roles = RoleAssignment.from_topology(topology)
        assert any(roles.is_multi_homed(index) for index in roles.indices())

    @pytest.mark.parametrize("family", ["star", "chain", "ring", "mesh"])
    def test_fault_absent_from_single_homed_catalogs(self, family):
        topology = generate_network(family, 6).topology
        assert MULTIHOME_FAULT_KEY not in synthesis_fault_catalog(topology)
        assert MULTIHOME_FAULT_KEY not in fault_designations(topology)
        assert multihome_fault_target(topology) is None

    def test_target_is_the_second_home(self, multihomed_setup):
        _, topology, _, designations, _ = multihomed_setup
        router, map_name, community = multihome_fault_target(topology)
        assert designations[MULTIHOME_FAULT_KEY] == router
        roles = RoleAssignment.from_topology(topology)
        index = next(
            index
            for index in roles.indices()
            if roles.is_multi_homed(index)
        )
        group = roles.groups[index]
        assert router == group[1].router
        assert map_name == f"ADD_COMM_R{index}"
        assert str(community).endswith(":1")


class TestInjection:
    def test_fault_manifests_on_designated_router(self, multihomed_setup):
        family, topology, catalog, designations, references = multihomed_setup
        router = designations[MULTIHOME_FAULT_KEY]
        clean = DraftState(references[router], generate_cisco).render()
        draft = DraftState(references[router], generate_cisco)
        draft.inject(catalog[MULTIHOME_FAULT_KEY])
        corrupted = draft.render()
        assert corrupted != clean, (
            f"{MULTIHOME_FAULT_KEY} silently no-ops on {family} {router}"
        )

    def test_only_the_faulted_home_stops_tagging(self, multihomed_setup):
        """The sibling home keeps adding the shared community while the
        faulted home's ingress map permits untagged routes."""
        _, topology, catalog, _, references = multihomed_setup
        router, map_name, community = multihome_fault_target(topology)
        roles = RoleAssignment.from_topology(topology)
        index = next(
            i for i in roles.indices() if roles.is_multi_homed(i)
        )
        sibling = roles.groups[index][0].router

        draft = DraftState(references[router], generate_cisco)
        draft.inject(catalog[MULTIHOME_FAULT_KEY])
        faulted = draft.current_config()
        from repro.symbolic import CandidateUniverse

        faulted_map = faulted.route_maps[map_name]
        universe = CandidateUniverse.for_policy(faulted, faulted_map)
        assert any(
            outcome.action is Action.PERMIT
            and community not in outcome.route.communities
            for outcome in (
                faulted_map.evaluate(route, faulted)
                for route in universe.cached_routes()
            )
        ), "the faulted home still tags everything it permits"

        sibling_map = references[sibling].route_maps[map_name]
        universe = CandidateUniverse.for_policy(references[sibling], sibling_map)
        for route in universe.cached_routes():
            outcome = sibling_map.evaluate(route, references[sibling])
            if outcome.action is Action.PERMIT:
                assert community in outcome.route.communities

    def test_misassigned_fault_raises_instead_of_noop(self, multihomed_setup):
        family, topology, catalog, designations, references = multihomed_setup
        designated = designations[MULTIHOME_FAULT_KEY]
        router, map_name, _ = multihome_fault_target(topology)
        roles = RoleAssignment.from_topology(topology)
        slot_routers = {
            attachment.router
            for index in roles.indices()
            for attachment in roles.groups[index]
            if f"ADD_COMM_R{index}" == map_name
        }
        victim = next(
            name
            for name in reversed(topology.router_names())
            if name != designated and name not in slot_routers
        )
        draft = DraftState(references[victim], generate_cisco)
        draft.inject(catalog[MULTIHOME_FAULT_KEY])
        with pytest.raises(FaultTargetError):
            draft.render()
