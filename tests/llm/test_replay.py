"""Tests for the replay client."""

import pytest

from repro.core import ScriptedHuman, TranslationOrchestrator
from repro.llm import (
    BehaviorProfile,
    ReplayClient,
    make_translation_model,
    responses_of,
    translation_fault_catalog,
)
from repro.sampleconfigs import load_translation_source


class TestReplayClient:
    def test_returns_responses_in_order(self):
        client = ReplayClient(["a", "b", "c"])
        assert [client.send("1"), client.send("2"), client.send("3")] == [
            "a",
            "b",
            "c",
        ]

    def test_repeats_last_when_exhausted(self):
        client = ReplayClient(["only"])
        client.send("x")
        assert client.send("y") == "only"
        assert client.exhausted

    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            ReplayClient([])

    def test_prompts_recorded(self):
        client = ReplayClient(["a"])
        client.send("hello")
        assert client.prompts_received() == ["hello"]


class TestReplayThroughOrchestrator:
    def test_replayed_run_reaches_same_verdict(self):
        """Record a simulated run, replay it, and verify the orchestrator
        reaches the same verified end state with the same prompt counts."""
        source = load_translation_source()
        live_model = make_translation_model(
            seed=3, profile=BehaviorProfile.always_fix()
        )
        human = ScriptedHuman(translation_fault_catalog())
        live = TranslationOrchestrator(source, live_model, human=human).run()
        assert live.verified

        replayed_model = ReplayClient(responses_of(live_model.transcript))
        replay = TranslationOrchestrator(
            source, replayed_model, human=human
        ).run()
        assert replay.verified
        assert replay.final_text == live.final_text
        assert (
            replay.prompt_log.automated == live.prompt_log.automated
        )
        assert replay.prompt_log.human == live.prompt_log.human
