"""Tests for the topology verifier (Table 3's seven inconsistencies)."""

import copy

import pytest

from repro.netmodel import BgpNeighbor, Ipv4Address, Prefix
from repro.topology import TopologyIssueKind, verify_network, verify_topology
from repro.topology.reference import build_reference_configs


@pytest.fixture()
def r2_config(star7):
    return build_reference_configs(star7.topology)["R2"]


@pytest.fixture()
def r2_spec(star7):
    return star7.topology.router("R2")


class TestVerifyTopology:
    def test_reference_config_is_clean(self, r2_config, r2_spec):
        assert verify_topology(r2_config, r2_spec) == []

    def test_interface_address_mismatch(self, r2_config, r2_spec):
        r2_config.interfaces["eth0/0"].address = Ipv4Address.parse("1.0.0.9")
        (issue,) = verify_topology(r2_config, r2_spec)
        assert issue.kind is TopologyIssueKind.INTERFACE_ADDRESS_MISMATCH
        assert (
            issue.message
            == "Interface eth0/0 ip address does not match with given "
            "config. Expected 1.0.0.2, found 1.0.0.9"
        )

    def test_missing_interface(self, r2_config, r2_spec):
        del r2_config.interfaces["eth0/1"]
        (issue,) = verify_topology(r2_config, r2_spec)
        assert issue.kind is TopologyIssueKind.MISSING_INTERFACE

    def test_local_as_mismatch_matches_table3(self, r2_config, r2_spec):
        r2_config.bgp.asn = 3
        issues = verify_topology(r2_config, r2_spec)
        messages = [i.message for i in issues]
        assert "Local AS number does not match. Expected 2, found 3" in messages

    def test_router_id_mismatch_matches_table3(self, r2_config, r2_spec):
        r2_config.bgp.router_id = Ipv4Address.parse("1.0.0.1")
        issues = verify_topology(r2_config, r2_spec)
        assert any(
            i.message
            == "Router ID does not match with given config. Expected "
            "1.0.0.2, found 1.0.0.1"
            for i in issues
        )

    def test_missing_neighbor_matches_table3(self, r2_config, r2_spec):
        r2_config.bgp.remove_neighbor("1.0.0.1")
        issues = verify_topology(r2_config, r2_spec)
        assert any(
            i.message == "Neighbor with IP address 1.0.0.1 and AS 1 not declared"
            for i in issues
        )

    def test_wrong_neighbor_as_counts_as_missing(self, r2_config, r2_spec):
        r2_config.bgp.neighbors["1.0.0.1"].remote_as = 99
        issues = verify_topology(r2_config, r2_spec)
        kinds = {i.kind for i in issues}
        assert TopologyIssueKind.MISSING_NEIGHBOR in kinds
        assert TopologyIssueKind.INCORRECT_NEIGHBOR in kinds

    def test_missing_network_matches_table3(self, r2_config, r2_spec):
        r2_config.bgp.networks = [
            p for p in r2_config.bgp.networks if str(p) != "1.0.0.0/24"
        ]
        issues = verify_topology(r2_config, r2_spec)
        assert any(
            i.message == "Network 1.0.0.0/24 not declared" for i in issues
        )

    def test_extra_network_matches_table3(self, star7):
        """Table 3 item 6: 7.0.0.0/24 is not directly connected to R1."""
        configs = build_reference_configs(star7.topology)
        hub = configs["R1"]
        hub.bgp.announce(Prefix.parse("7.0.0.0/24"))
        issues = verify_topology(hub, star7.topology.router("R1"))
        assert any(
            i.message
            == "Incorrect network declaration. 7.0.0.0/24 is not directly "
            "connected to R1"
            for i in issues
        )

    def test_extra_neighbor_matches_table3(self, star7):
        """Table 3 item 7: no neighbor 7.0.0.2 AS 7 in the topology."""
        configs = build_reference_configs(star7.topology)
        hub = configs["R1"]
        hub.bgp.add_neighbor(
            BgpNeighbor(ip=Ipv4Address.parse("7.0.0.2"), remote_as=7)
        )
        issues = verify_topology(hub, star7.topology.router("R1"))
        assert any(
            i.message
            == "Incorrect neighbor declaration. No neighbor with IP address "
            "7.0.0.2 AS 7 found"
            for i in issues
        )

    def test_missing_bgp(self, r2_config, r2_spec):
        r2_config.bgp = None
        (issue,) = verify_topology(r2_config, r2_spec)
        assert issue.kind is TopologyIssueKind.MISSING_BGP


class TestVerifyNetwork:
    def test_all_reference_configs_clean(self, star7, star7_configs):
        assert verify_network(star7_configs, star7.topology) == []

    def test_missing_router_reported(self, star7, star7_configs):
        configs = dict(star7_configs)
        del configs["R4"]
        issues = verify_network(configs, star7.topology)
        assert any(i.router == "R4" for i in issues)

    def test_issues_attributed_to_router(self, star7, star7_configs):
        configs = copy.deepcopy(star7_configs)
        configs["R3"].bgp.asn = 1
        issues = verify_network(configs, star7.topology)
        assert all(i.router == "R3" for i in issues)
