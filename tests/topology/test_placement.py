"""Degree-aware role placement (``place="degree"``).

The strategy pins customer roles to the lowest-degree routers (the
network edge) while ISPs/peers still seed-shuffle over the remaining
hosts.  Contract: deterministic per (family, size, seed, knobs, roles,
place), and the sampled *graph* is placement-independent — an ablation
over ``place`` compares placements on identical links.
"""

import pytest

from repro.topology.families import generate_network
from repro.topology.randomnet import PLACEMENTS, coerce_placement
from repro.topology.roles import RoleAssignment

FAMILIES = ["random", "waxman"]


def _internal_degrees(topology):
    degrees = {name: 0 for name in topology.router_names()}
    for link in topology.links:
        degrees[link.router_a] += 1
        degrees[link.router_b] += 1
    return degrees


class TestCoercion:
    def test_defaults_map_to_seeded(self):
        assert coerce_placement(None) == "seeded"
        assert coerce_placement("") == "seeded"
        assert coerce_placement("default") == "seeded"

    def test_known_strategies_pass_through(self):
        for place in PLACEMENTS:
            assert coerce_placement(place) == place

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            coerce_placement("centrality")


@pytest.mark.parametrize("family", FAMILIES)
class TestDegreePlacement:
    def test_byte_deterministic(self, family):
        one = generate_network(
            family, 9, seed=3, roles="c2i2h1", place="degree"
        )
        two = generate_network(
            family, 9, seed=3, roles="c2i2h1", place="degree"
        )
        assert one.topology.to_json() == two.topology.to_json()
        assert one.place == "degree"

    def test_graph_is_placement_independent(self, family):
        seeded = generate_network(family, 9, seed=3, roles="c2i2h1")
        degree = generate_network(
            family, 9, seed=3, roles="c2i2h1", place="degree"
        )
        seeded_links = [
            (link.router_a, link.router_b) for link in seeded.topology.links
        ]
        degree_links = [
            (link.router_a, link.router_b) for link in degree.topology.links
        ]
        assert seeded_links == degree_links

    def test_customers_land_on_lowest_degree_routers(self, family):
        for seed in range(4):
            network = generate_network(
                family, 10, seed=seed, roles="c2i3h1", place="degree"
            )
            topology = network.topology
            degrees = _internal_degrees(topology)
            roles = RoleAssignment.from_topology(topology)
            customer_routers = [a.router for a in roles.customers]
            expected = sorted(
                topology.router_names(),
                key=lambda name: (degrees[name], int(name[1:])),
            )[: len(customer_routers)]
            assert sorted(customer_routers) == sorted(expected), (
                f"seed {seed}: customers on {customer_routers}, "
                f"lowest-degree routers are {expected} ({degrees})"
            )

    def test_roles_still_complete(self, family):
        network = generate_network(
            family, 9, seed=5, roles="c2i2h2", place="degree"
        )
        roles = RoleAssignment.from_topology(network.topology)
        assert len(roles.customers) == 2
        assert len(roles.transit_forbidden()) == 4
        assert any(roles.is_multi_homed(index) for index in roles.indices())


class TestFixedLayoutRejection:
    @pytest.mark.parametrize("family", ["star", "chain", "ring", "mesh", "dumbbell"])
    def test_hand_shaped_families_reject_degree(self, family):
        with pytest.raises(ValueError, match="placement"):
            generate_network(family, 6, place="degree")

    def test_default_place_accepted_everywhere(self):
        network = generate_network("chain", 6, place="default")
        assert network.family == "chain"
