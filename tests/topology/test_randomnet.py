"""Seeded random/Waxman generators: determinism, connectivity, knobs.

The contract: byte-identical topology JSON per (family, size, seed,
knobs, roles), a connected internal graph no matter how sparse the
sample, and loud rejection of malformed knobs or oversized role specs.
"""

import pytest

from repro.topology import generate_network
from repro.topology.families import FAMILIES, SEEDED_FAMILIES
from repro.topology.randomnet import (
    generate_random_network,
    generate_waxman_network,
    parse_topo_params,
)
from repro.topology.roles import RoleSpec

SEEDED = sorted(SEEDED_FAMILIES)


class TestRegistration:
    def test_random_and_waxman_are_families(self):
        assert "random" in FAMILIES
        assert "waxman" in FAMILIES

    @pytest.mark.parametrize("family", SEEDED)
    def test_default_generation_names_and_sizes(self, family):
        network = generate_network(family, 6)
        assert network.family == family
        assert network.size == 6
        assert network.topology.name == f"{family}-6"
        assert network.seed == 0
        assert network.roles == RoleSpec.default_for(6).key()


class TestDeterminism:
    @pytest.mark.parametrize("family", SEEDED)
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_same_seed_same_graph_bytes(self, family, seed):
        first = generate_network(family, 9, seed=seed, roles="c2i2h2")
        second = generate_network(family, 9, seed=seed, roles="c2i2h2")
        assert first.topology.to_json() == second.topology.to_json()
        assert first.description == second.description

    @pytest.mark.parametrize("family", SEEDED)
    def test_different_seeds_differ(self, family):
        jsons = {
            generate_network(family, 10, seed=seed).topology.to_json()
            for seed in range(6)
        }
        assert len(jsons) > 1  # at least some seeds produce new graphs

    @pytest.mark.parametrize("family", SEEDED)
    def test_knobs_change_the_graph(self, family):
        dense = {"random": "p=0.9", "waxman": "alpha=2.0,beta=0.95"}[family]
        sparse = {"random": "p=0.05", "waxman": "alpha=0.05,beta=0.1"}[family]
        a = generate_network(family, 12, seed=3, params=dense).topology
        b = generate_network(family, 12, seed=3, params=sparse).topology
        assert len(a.links) > len(b.links)


class TestConnectivity:
    @pytest.mark.parametrize("family", SEEDED)
    @pytest.mark.parametrize("seed", range(8))
    def test_always_connected_even_when_sparse(self, family, seed):
        sparse = {"random": "p=0.02", "waxman": "alpha=0.05,beta=0.05"}[family]
        topology = generate_network(
            family, 10, seed=seed, params=sparse
        ).topology
        adjacency = {name: set() for name in topology.routers}
        for link in topology.links:
            adjacency[link.router_a].add(link.router_b)
            adjacency[link.router_b].add(link.router_a)
        frontier = ["R1"]
        reached = {"R1"}
        while frontier:
            for neighbor in adjacency[frontier.pop()]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        assert reached == set(topology.routers)


class TestRolePlacement:
    @pytest.mark.parametrize("family", SEEDED)
    def test_spec_is_honored(self, family):
        topology = generate_network(
            family, 9, seed=2, roles="c2i2h2p1"
        ).topology
        names = [peer.peer_name for peer in topology.externals]
        assert names.count("CUSTOMER") == 1
        assert names.count("CUSTOMER_2") == 1
        assert names.count("ISP_2") == 2  # two homes
        assert names.count("ISP_3") == 2
        assert names.count("PEER_4") == 1
        # every attachment on its own router
        routers = [peer.router for peer in topology.externals]
        assert len(routers) == len(set(routers))

    def test_multi_homed_subnets_are_distinct(self):
        topology = generate_network(
            "random", 8, seed=0, roles="c1i1h2"
        ).topology
        homes = [p for p in topology.externals if p.peer_name == "ISP_2"]
        assert len(homes) == 2
        assert homes[0].peer_ip != homes[1].peer_ip
        assert homes[0].peer_asn == homes[1].peer_asn  # one AS, two homes

    def test_oversized_spec_rejected(self):
        with pytest.raises(ValueError, match="border routers"):
            generate_network("random", 4, roles="c2i3h2")

    @pytest.mark.parametrize("family", SEEDED)
    def test_size_bounds_enforced(self, family):
        with pytest.raises(ValueError):
            generate_network(family, 1)


class TestKnobs:
    def test_parse_topo_params(self):
        assert parse_topo_params(None) == {}
        assert parse_topo_params("default") == {}
        assert parse_topo_params("p=0.4") == {"p": 0.4}
        assert parse_topo_params("alpha=0.5,beta=0.7") == {
            "alpha": 0.5, "beta": 0.7,
        }
        assert parse_topo_params({"p": "0.3"}) == {"p": 0.3}

    def test_malformed_knobs_rejected(self):
        with pytest.raises(ValueError, match="name=value"):
            parse_topo_params("p0.4")
        with pytest.raises(ValueError, match="knob value"):
            parse_topo_params("p=high")

    def test_unknown_knob_rejected_per_family(self):
        with pytest.raises(ValueError, match="unknown random knob"):
            generate_random_network(6, params="alpha=0.5")
        with pytest.raises(ValueError, match="unknown waxman knob"):
            generate_waxman_network(6, params="p=0.5")

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError, match="edge probability"):
            generate_random_network(6, params="p=1.5")
        with pytest.raises(ValueError, match="alpha must be positive"):
            generate_waxman_network(6, params="alpha=0,beta=0.5")

    def test_legacy_families_reject_axes(self):
        with pytest.raises(ValueError, match="fixed role layout"):
            generate_network("mesh", 5, roles="c2i2h1")
        with pytest.raises(ValueError, match="no topology knobs"):
            generate_network("ring", 5, params="p=0.4")


class TestRoleSpec:
    @pytest.mark.parametrize(
        "text", ["c1i3h1", "c2i3h2", "c1i2h1p1", "c10i4h3p2"]
    )
    def test_key_round_trips(self, text):
        assert RoleSpec.parse(text).key() == text

    def test_coerce(self):
        assert RoleSpec.coerce(None) is None
        assert RoleSpec.coerce("default") is None
        assert RoleSpec.coerce("") is None
        spec = RoleSpec(customers=2, isps=2, homes=2)
        assert RoleSpec.coerce(spec) is spec
        assert RoleSpec.coerce("c2i2h2") == spec

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="invalid role spec"):
            RoleSpec.parse("2c3i")
        with pytest.raises(ValueError, match="at least one customer"):
            RoleSpec(customers=0, isps=2, homes=1)
        with pytest.raises(ValueError, match="at least one home"):
            RoleSpec(customers=1, isps=2, homes=0)

    def test_attachment_count(self):
        assert RoleSpec.parse("c2i3h2p1").attachments == 2 + 6 + 1
