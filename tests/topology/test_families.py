"""End-to-end coverage for the chain/ring/mesh/dumbbell families.

Mirrors the star tests: every family's reference configs must render to
Cisco text that parses warning-free, satisfy the topology verifier, the
Lightyear-style local invariants, the composition argument, and the
global no-transit check — out of the box.
"""

import pytest

from repro.cisco import generate_cisco, parse_cisco
from repro.lightyear import (
    check_composition,
    check_global_no_transit,
    no_transit_invariants,
    verify_invariants,
)
from repro.topology import (
    FAMILIES,
    generate_network,
    generate_star_network,
    is_hub_star,
    verify_topology,
)
from repro.topology.model import Topology
from repro.topology.reference import build_reference_configs

NON_STAR_FAMILIES = sorted(set(FAMILIES) - {"star"})


def _parsed_reference_configs(topology):
    """Render the references to text and parse them back, asserting the
    text is warning-free (the synthesis loop sees the same round trip)."""
    parsed = {}
    for name, config in build_reference_configs(topology).items():
        result = parse_cisco(generate_cisco(config), filename=f"{name}.cfg")
        assert not result.warnings, [w.render() for w in result.warnings]
        if not result.config.hostname:
            result.config.hostname = name
        parsed[name] = result.config
    return parsed


class TestGenerators:
    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    def test_sizes_and_naming(self, family):
        network = generate_network(family, 6)
        assert network.family == family
        assert network.size == 6
        assert network.topology.router_names() == [
            f"R{i}" for i in range(1, 7)
        ]
        assert network.topology.name == f"{family}-6"

    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    def test_description_mentions_family(self, family):
        network = generate_network(family, 5)
        assert f"a {family} of 5 routers" in network.description

    def test_star_description_unchanged(self):
        star = generate_star_network(5)
        assert "a star of 5 routers" in star.description

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_size_bounds_enforced(self, family):
        with pytest.raises(ValueError):
            generate_network(family, 1)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            generate_network("torus", 5)

    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    def test_json_round_trip(self, family):
        topology = generate_network(family, 5).topology
        restored = Topology.from_json(topology.to_json())
        assert restored.to_dict() == topology.to_dict()

    def test_expected_link_counts(self):
        assert len(generate_network("chain", 6).topology.links) == 5
        assert len(generate_network("ring", 6).topology.links) == 6
        assert len(generate_network("mesh", 6).topology.links) == 15
        assert len(generate_network("dumbbell", 6).topology.links) == 5

    def test_dumbbell_cores_have_no_isp(self):
        topology = generate_network("dumbbell", 6).topology
        isp_routers = {
            peer.router
            for peer in topology.externals
            if peer.peer_name != "CUSTOMER"
        }
        assert isp_routers == {"R3", "R4", "R5", "R6"}


class TestHubDetection:
    def test_star_is_hub_shaped(self):
        assert is_hub_star(generate_star_network(7).topology)

    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    def test_other_families_are_not(self, family):
        assert not is_hub_star(generate_network(family, 5).topology)

    def test_empty_topology_is_not(self):
        assert not is_hub_star(Topology(name="empty"))


class TestReferenceSynthesis:
    """The acceptance bar: every family verifies locally and globally."""

    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    @pytest.mark.parametrize("size", [4, 6])
    def test_reference_configs_verify_end_to_end(self, family, size):
        network = generate_network(family, size)
        topology = network.topology
        configs = _parsed_reference_configs(topology)
        for name, config in configs.items():
            issues = verify_topology(config, topology.router(name))
            assert not issues, [issue.message for issue in issues]
        invariants = no_transit_invariants(topology)
        assert invariants
        violations = verify_invariants(configs, invariants)
        assert not violations, [v.message for v in violations]
        composition = check_composition(invariants, configs, topology)
        assert composition.holds, composition.describe()
        global_check = check_global_no_transit(configs, topology)
        assert global_check.holds, global_check.describe()

    def test_broken_egress_filter_is_caught_globally(self):
        network = generate_network("chain", 5)
        configs = _parsed_reference_configs(network.topology)
        configs["R3"].bgp.get_neighbor("200.3.0.2").export_policy = None
        check = check_global_no_transit(configs, network.topology)
        assert not check.holds
        assert check.transit_violations

    def test_stripped_core_tagging_is_caught_globally(self):
        network = generate_network("ring", 5)
        configs = _parsed_reference_configs(network.topology)
        for clause in configs["R4"].route_maps["EXPORT_CORE_R4"].clauses:
            clause.sets = []
        check = check_global_no_transit(configs, network.topology)
        assert not check.holds
        assert check.transit_violations

    def test_missing_config_reported(self):
        network = generate_network("mesh", 4)
        configs = _parsed_reference_configs(network.topology)
        del configs["R3"]
        check = check_global_no_transit(configs, network.topology)
        assert not check.holds

    @pytest.mark.parametrize("family", NON_STAR_FAMILIES)
    def test_border_invariants_sit_on_isp_routers(self, family):
        topology = generate_network(family, 5).topology
        isp_routers = {
            peer.router
            for peer in topology.externals
            if peer.peer_name != "CUSTOMER"
        }
        invariants = no_transit_invariants(topology)
        assert {inv.router for inv in invariants} == isp_routers
