"""Tests for the topology model, JSON round-trip, and star generator."""

import json

import pytest

from repro.netmodel import Ipv4Address, Prefix
from repro.topology import (
    Topology,
    generate_star_network,
    ingress_community,
)
from repro.topology.generator import CUSTOMER_ASN


class TestStarGenerator:
    def test_router_count(self, star7):
        assert len(star7.topology.routers) == 7

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_star_network(1)

    def test_maximum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_star_network(99)

    def test_hub_as_number(self, star7):
        assert star7.topology.router("R1").asn == 1

    def test_spoke_as_numbers(self, star7):
        assert star7.topology.router("R5").asn == 5

    def test_link_addressing_matches_table3(self, star7):
        """R2's hub link is 1.0.0.0/24: R1 at 1.0.0.1, R2 at 1.0.0.2
        (Table 3's Expected 1.0.0.2 router-id and 1.0.0.1 AS-1 neighbor)."""
        r2 = star7.topology.router("R2")
        assert str(r2.router_id) == "1.0.0.2"
        hub_neighbor = r2.neighbor_with_ip(Ipv4Address.parse("1.0.0.1"))
        assert hub_neighbor is not None
        assert hub_neighbor.asn == 1

    def test_hub_interface_to_r3(self, star7):
        """Table 3's 'Interface eth0/2 ... Expected 2.0.0.1'."""
        spec = star7.topology.router("R1").interface("eth0/2")
        assert str(spec.address) == "2.0.0.1"

    def test_customer_attachment(self, star7):
        hub = star7.topology.router("R1")
        customer = hub.neighbor_with_ip(Ipv4Address.parse("100.0.0.2"))
        assert customer.asn == CUSTOMER_ASN
        assert customer.peer_name == "CUSTOMER"

    def test_isp_attachments(self, star7):
        externals = star7.topology.externals_of("R2")
        (isp,) = [e for e in externals if e.peer_name == "ISP_2"]
        assert isp.peer_asn == 1002
        assert str(isp.peer_ip) == "200.2.0.2"

    def test_spoke_networks(self, star7):
        r2 = star7.topology.router("R2")
        assert Prefix.parse("1.0.0.0/24") in r2.networks
        assert Prefix.parse("200.2.0.0/24") in r2.networks

    def test_links_count(self, star7):
        assert len(star7.topology.links) == 6

    def test_description_mentions_connections(self, star7):
        assert "Router R1 is connected to Router R2" in star7.description
        assert "eth0/1 at R1" in star7.description

    def test_description_mentions_announcements(self, star7):
        assert "must announce" in star7.description

    def test_router_names_numeric_order(self):
        star = generate_star_network(12)
        names = star.topology.router_names()
        assert names.index("R2") < names.index("R10")


class TestIngressCommunity:
    def test_paper_assignment(self):
        """§4.2: 100:1 for R2, 101:1 for R3, ..."""
        assert str(ingress_community(2)) == "100:1"
        assert str(ingress_community(3)) == "101:1"
        assert str(ingress_community(6)) == "104:1"

    def test_hub_has_no_community(self):
        with pytest.raises(ValueError):
            ingress_community(1)


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, star7):
        text = star7.topology.to_json()
        rebuilt = Topology.from_json(text)
        assert rebuilt.to_dict() == star7.topology.to_dict()

    def test_json_is_valid_and_sorted(self, star7):
        data = json.loads(star7.topology.to_json())
        assert set(data) == {"external_peers", "links", "name", "routers"}

    def test_router_fields(self, star7):
        data = star7.topology.to_dict()
        r2 = data["routers"]["R2"]
        assert r2["asn"] == 2
        assert r2["router_id"] == "1.0.0.2"
        assert "eth0/0" in r2["interfaces"]

    def test_from_dict_parses_neighbors(self, star7):
        rebuilt = Topology.from_dict(star7.topology.to_dict())
        r2 = rebuilt.router("R2")
        assert len(r2.neighbors) == 2
