"""Role assignments: recovery from topologies and the full no-transit
pipeline on multi-customer / multi-homed-ISP networks.

The acceptance bar mirrors the family tests: a role-assigned scenario
must run reference configs → local invariants → composition → global
check end to end, with per-role verdicts that hold on the references
and flip for exactly the implicated roles when a policy is broken.
"""

import pytest

from repro.cisco import generate_cisco, parse_cisco
from repro.lightyear import (
    check_composition,
    check_global_no_transit,
    no_transit_invariants,
    verify_invariants,
)
from repro.topology import (
    RoleAssignment,
    RoleKind,
    generate_network,
)
from repro.topology.reference import build_reference_configs
from repro.topology.roles import egress_map_of, ingress_map_of
from repro.topology.verifier import verify_topology

ROLED = "c2i2h2p1"  # 2 customers, 2 dual-homed ISPs, 1 peer -> 7 attachments


def _parsed_reference_configs(topology):
    parsed = {}
    for name, config in build_reference_configs(topology).items():
        result = parse_cisco(generate_cisco(config), filename=f"{name}.cfg")
        assert not result.warnings, [w.render() for w in result.warnings]
        if not result.config.hostname:
            result.config.hostname = name
        parsed[name] = result.config
    return parsed


class TestRoleAssignmentRecovery:
    def test_legacy_family_is_the_degenerate_case(self):
        topology = generate_network("chain", 5).topology
        roles = RoleAssignment.from_topology(topology)
        assert [a.role_name for a in roles.customers] == ["CUSTOMER"]
        assert roles.indices() == [2, 3, 4, 5]
        assert not any(roles.is_multi_homed(i) for i in roles.indices())
        assert all(
            a.kind is RoleKind.PROVIDER for a in roles.transit_forbidden()
        )

    def test_roled_network_recovers_groups(self):
        topology = generate_network("random", 9, seed=5, roles=ROLED).topology
        roles = RoleAssignment.from_topology(topology)
        assert len(roles.customers) == 2
        assert roles.indices() == [2, 3, 4]
        assert roles.is_multi_homed(2) and roles.is_multi_homed(3)
        assert not roles.is_multi_homed(4)
        kinds = {
            index: roles.groups[index][0].kind for index in roles.indices()
        }
        assert kinds[2] is RoleKind.PROVIDER
        assert kinds[4] is RoleKind.PEER
        assert roles.role_names() == [
            "CUSTOMER", "CUSTOMER_2", "ISP_2", "ISP_3", "PEER_4",
        ]

    def test_map_name_helpers_follow_the_slot(self):
        topology = generate_network("random", 8, seed=1, roles="c1i1h2").topology
        roles = RoleAssignment.from_topology(topology)
        home_a, home_b = roles.groups[2]
        for home in (home_a, home_b):
            assert ingress_map_of(topology, home.router) == "ADD_COMM_R2"
            assert egress_map_of(topology, home.router) == "FILTER_COMM_OUT_R2"
        customer_router = roles.customers[0].router
        if customer_router not in {home_a.router, home_b.router}:
            assert ingress_map_of(topology, customer_router) is None


class TestRoledPipeline:
    @pytest.mark.parametrize("family", ["random", "waxman"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_references_verify_end_to_end(self, family, seed):
        topology = generate_network(family, 9, seed=seed, roles=ROLED).topology
        configs = _parsed_reference_configs(topology)
        for name, config in configs.items():
            issues = verify_topology(config, topology.router(name))
            assert not issues, [issue.message for issue in issues]
        invariants = no_transit_invariants(topology)
        roles = RoleAssignment.from_topology(topology)
        # one ingress-tag + one egress-filter obligation per attachment
        assert len(invariants) == 2 * len(roles.transit_forbidden())
        violations = verify_invariants(configs, invariants)
        assert not violations, [v.message for v in violations]
        composition = check_composition(invariants, configs, topology)
        assert composition.holds, composition.describe()
        check = check_global_no_transit(configs, topology)
        assert check.holds, check.describe()
        assert set(check.role_verdicts) == set(roles.role_names())
        assert all(check.role_verdicts.values())

    def test_invariants_share_one_tag_per_isp(self):
        topology = generate_network("random", 8, seed=1, roles="c1i1h2").topology
        invariants = no_transit_invariants(topology)
        tags = {
            inv.community
            for inv in invariants
            if inv.__class__.__name__ == "IngressTagInvariant"
        }
        assert len(tags) == 1  # both homes tag with ISP_2's community

    def test_broken_home_blames_both_implicated_isps(self):
        topology = generate_network("random", 9, seed=1, roles="c2i2h2").topology
        roles = RoleAssignment.from_topology(topology)
        victim = roles.groups[2][1]  # second home of ISP_2
        configs = build_reference_configs(topology)
        neighbor = configs[victim.router].bgp.get_neighbor(victim.peer.peer_ip)
        neighbor.export_policy = None
        check = check_global_no_transit(configs, topology)
        assert not check.holds
        assert check.transit_violations
        assert check.role_verdicts["ISP_2"] is False
        assert check.role_verdicts["ISP_3"] is False
        assert check.role_verdicts["CUSTOMER"] is True

    def test_missing_border_config_flags_the_role(self):
        topology = generate_network("random", 9, seed=2, roles="c2i2h2").topology
        roles = RoleAssignment.from_topology(topology)
        victim = roles.groups[3][0]
        configs = build_reference_configs(topology)
        del configs[victim.router]
        check = check_global_no_transit(configs, topology)
        assert not check.holds
        assert check.role_verdicts["ISP_3"] is False

    def test_peer_has_no_reachability_obligation(self):
        """Severing a PEER's customer path must not fail the check —
        peers are transit-forbidden but owed nothing."""
        topology = generate_network("random", 9, seed=0, roles=ROLED).topology
        roles = RoleAssignment.from_topology(topology)
        (peer,) = roles.groups[4]
        assert peer.kind is RoleKind.PEER
        configs = build_reference_configs(topology)
        check = check_global_no_transit(configs, topology)
        assert check.holds
        # the customer side is also not owed the peer's prefix
        assert not any("PEER_4" in line for line in check.isp_prefixes_missing_at_hub)


class TestCompositionGrouping:
    def test_multi_homed_pairs_need_no_coverage(self):
        """Without role grouping, the (home A -> home B) pair of one
        ISP would count as uncovered (its own tag is deliberately not
        forbidden at its other home) and the composition argument would
        wrongly fail on every multi-homed network."""
        topology = generate_network("random", 8, seed=3, roles="c1i2h2").topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        result = check_composition(invariants, configs, topology)
        assert result.holds, result.describe()
        # all cross-ISP ordered pairs, none of the intra-ISP ones:
        # 2 homes x 2 homes x 2 directions = 8
        assert len(result.covered_pairs) == 8
