"""Spans, trace-event capture, and trace-file validation."""

import json
import threading

import pytest

from repro.obs import (
    REGISTRY,
    drain_events,
    open_spans,
    set_tracing,
    span,
    span_events,
    tracing_enabled,
    validate_trace,
    validate_trace_file,
    write_trace,
)


class TestSpanTimers:
    def test_span_feeds_phase_timer_even_without_tracing(self):
        assert not tracing_enabled()
        with span("t-quiet"):
            pass
        t = REGISTRY.timer("phase.t-quiet")
        assert t.count == 1
        assert t.total_s >= 0
        assert drain_events() == []

    def test_span_records_event_when_tracing(self):
        set_tracing(True)
        try:
            with span("t-loud", router="R3", n=4):
                pass
        finally:
            set_tracing(False)
        events = drain_events()
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "t-loud"
        assert event["ph"] == "X"
        assert event["args"] == {"router": "R3", "n": "4"}
        assert event["dur"] >= 0

    def test_span_stack_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with span("t-boom"):
                raise RuntimeError("inner failure")
        assert open_spans() == 0
        # The phase timer still observed the failed span.
        assert REGISTRY.timer("phase.t-boom").count == 1

    def test_nested_spans_each_get_their_own_timer(self):
        with span("t-outer"):
            with span("t-inner"):
                pass
        assert REGISTRY.timer("phase.t-outer").count == 1
        assert REGISTRY.timer("phase.t-inner").count == 1

    def test_span_events_peeks_without_clearing(self):
        set_tracing(True)
        try:
            with span("t-peek"):
                pass
            assert len(span_events()) == 1
            assert len(span_events()) == 1
        finally:
            set_tracing(False)
        assert len(drain_events()) == 1

    def test_concurrent_spans_do_not_corrupt_the_buffer(self):
        set_tracing(True)
        try:
            def work():
                for _ in range(50):
                    with span("t-thread"):
                        pass

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            set_tracing(False)
        events = drain_events()
        assert len(events) == 200
        # Thread idents may be reused once a thread exits, so only a
        # lower bound on distinct tracks is stable.
        assert len({e["tid"] for e in events}) >= 1


class TestTraceFiles:
    def test_write_and_validate_roundtrip(self, tmp_path):
        set_tracing(True)
        try:
            with span("t-file-outer"):
                with span("t-file-inner"):
                    pass
        finally:
            set_tracing(False)
        path = tmp_path / "trace.json"
        write_trace(str(path), drain_events())
        n_events, n_tracks = validate_trace_file(str(path))
        assert (n_events, n_tracks) == (2, 1)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"

    def test_validate_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_trace([{"name": "x", "ph": "X"}])

    def test_validate_rejects_non_complete_phases(self):
        event = {"name": "x", "ph": "B", "ts": 0, "dur": 1,
                 "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_trace([event])

    def test_validate_rejects_partial_overlap(self):
        a = {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1}
        b = {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="without nesting"):
            validate_trace([a, b])

    def test_validate_accepts_shared_start_nesting(self):
        outer = {"name": "o", "ph": "X", "ts": 0, "dur": 10,
                 "pid": 1, "tid": 1}
        inner = {"name": "i", "ph": "X", "ts": 0, "dur": 4,
                 "pid": 1, "tid": 1}
        assert validate_trace([inner, outer]) == (2, 1)

    def test_validate_separates_tracks_by_pid_tid(self):
        a = {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1}
        b = {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 2, "tid": 1}
        assert validate_trace([a, b]) == (2, 2)

    def test_cli_validator(self, tmp_path, capsys):
        from repro.obs.tracing import _main

        path = tmp_path / "trace.json"
        write_trace(str(path), [])
        assert _main([str(path)]) == 0
        assert "OK (0 events, 0 tracks)" in capsys.readouterr().out
        assert _main([]) == 2
