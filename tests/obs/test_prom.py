"""The Prometheus text renderer behind ``GET /metrics``."""

import pytest

from repro.obs import render_prometheus, sanitize_metric_name


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("memo.universe-policy.hits") == (
            "memo_universe_policy_hits"
        )

    def test_leading_digit_gets_guard(self):
        assert sanitize_metric_name("9lives")[0] != "9"

    def test_valid_names_pass_through(self):
        assert sanitize_metric_name("repro_uptime_seconds") == (
            "repro_uptime_seconds"
        )


class TestRender:
    def test_type_header_and_sample_lines(self):
        text = render_prometheus([
            ("repro_scenarios_total", None, 7, "counter"),
            ("repro_uptime_seconds", None, 1.5, "gauge"),
        ])
        lines = text.splitlines()
        assert "# TYPE repro_scenarios_total counter" in lines
        assert "repro_scenarios_total 7" in lines
        assert "# TYPE repro_uptime_seconds gauge" in lines
        assert "repro_uptime_seconds 1.5" in lines
        assert text.endswith("\n")

    def test_labeled_samples_share_one_family_header(self):
        text = render_prometheus([
            ("repro_worker_alive", {"slot": "0"}, 1, "gauge"),
            ("repro_worker_alive", {"slot": "1"}, 0, "gauge"),
        ])
        assert text.count("# TYPE repro_worker_alive gauge") == 1
        assert 'repro_worker_alive{slot="0"} 1' in text
        assert 'repro_worker_alive{slot="1"} 0' in text

    def test_label_values_escaped(self):
        text = render_prometheus([
            ("repro_thing", {"k": 'a"b\\c\nd'}, 1, "counter"),
        ])
        assert '{k="a\\"b\\\\c\\nd"}' in text

    def test_conflicting_family_types_raise(self):
        with pytest.raises(ValueError):
            render_prometheus([
                ("repro_x", None, 1, "counter"),
                ("repro_x", None, 2, "gauge"),
            ])

    def test_unsanitized_input_names_merge_into_one_family(self):
        text = render_prometheus([
            ("repro_route.routes_built", None, 3, "counter"),
        ])
        assert "repro_route_routes_built 3" in text
