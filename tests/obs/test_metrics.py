"""The metrics registry: get-or-create, snapshots, delta/merge algebra."""

import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    counter,
    counters_snapshot,
    delta,
    gauge,
    merge,
    reset_metrics,
    snapshot,
    timer,
)


class TestRegistry:
    def test_counter_get_or_create_is_idempotent(self):
        a = counter("t.metrics.events")
        a.inc()
        a.inc(4)
        assert a.value == 5
        assert counter("t.metrics.events") is a

    def test_same_name_different_kind_raises(self):
        counter("t.metrics.kind-clash")
        with pytest.raises(ValueError, match="already registered"):
            gauge("t.metrics.kind-clash")
        with pytest.raises(ValueError, match="already registered"):
            timer("t.metrics.kind-clash")

    def test_gauge_moves_both_ways_and_is_not_a_counter_series(self):
        g = gauge("t.metrics.level")
        g.inc()
        g.inc()
        g.dec()
        assert g.value == 1.0
        assert "t.metrics.level" in snapshot()
        assert "t.metrics.level" not in counters_snapshot()
        g.reset()

    def test_timer_snapshot_triple(self):
        t = timer("t.metrics.phase")
        t.observe(0.5)
        t.observe(1.5)
        snap = counters_snapshot()
        assert snap["t.metrics.phase.count"] == 2
        assert snap["t.metrics.phase.total_s"] == pytest.approx(2.0)
        assert snap["t.metrics.phase.max_s"] == pytest.approx(1.5)
        assert t.mean_s == pytest.approx(1.0)

    def test_reset_zeroes_but_keeps_handles_valid(self):
        c = counter("t.metrics.reset-me")
        c.inc(7)
        reset_metrics()
        assert c.value == 0
        assert counter("t.metrics.reset-me") is c

    def test_registry_snapshot_is_safe_under_concurrent_creation(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                registry.counter(f"t.churn.{i % 512}").inc()
                i += 1

        worker = threading.Thread(target=churn, daemon=True)
        worker.start()
        try:
            for _ in range(200):
                registry.counters_snapshot()
        finally:
            stop.set()
            worker.join(timeout=5)


class TestDeltaMerge:
    def test_delta_drops_zero_series(self):
        before = {"a": 3, "b": 5}
        after = {"a": 5, "b": 5, "c": 1}
        assert delta(before, after) == {"a": 2, "c": 1}

    def test_delta_max_key_takes_after_value_when_count_moved(self):
        before = {"p.count": 1, "p.total_s": 1.0, "p.max_s": 1.0}
        after = {"p.count": 2, "p.total_s": 1.5, "p.max_s": 1.0}
        out = delta(before, after)
        assert out == {"p.count": 1, "p.total_s": 0.5, "p.max_s": 1.0}

    def test_delta_max_key_dropped_when_count_unchanged(self):
        before = {"p.count": 2, "p.total_s": 1.5, "p.max_s": 1.0}
        after = {"p.count": 2, "p.total_s": 1.5, "p.max_s": 1.0}
        assert delta(before, after) == {}

    def test_merge_sums_and_maxes(self):
        into = merge(
            {},
            {"a": 1, "p.max_s": 0.5},
            {"a": 2, "p.max_s": 0.2},
            None,
            {"b": 3},
        )
        assert into == {"a": 3, "p.max_s": 0.5, "b": 3}

    def test_merge_returns_into_in_place(self):
        into = {"a": 1}
        assert merge(into, {"a": 1}) is into
        assert into == {"a": 2}

    def test_delta_merge_roundtrip_recovers_totals(self):
        # Two "workers" start from different baselines; merged deltas
        # must equal the union of their local activity.
        w1_before = {"x": 10, "p.count": 1, "p.total_s": 2.0, "p.max_s": 2.0}
        w1_after = {"x": 13, "p.count": 3, "p.total_s": 5.0, "p.max_s": 2.5}
        w2_before = {"x": 0}
        w2_after = {"x": 4}
        folded = merge(
            {}, delta(w1_before, w1_after), delta(w2_before, w2_after)
        )
        assert folded["x"] == 7
        assert folded["p.count"] == 2
        assert folded["p.total_s"] == pytest.approx(3.0)
        assert folded["p.max_s"] == pytest.approx(2.5)


class TestMigratedSurfaces:
    def test_route_stats_live_in_the_registry(self):
        from repro.netmodel.route import (
            ROUTES_BUILT,
            reset_route_stats,
            route_totals,
        )

        reset_route_stats()
        ROUTES_BUILT.inc()
        assert route_totals()["routes_built"] == 1
        assert counters_snapshot()["route.routes_built"] == 1
        reset_route_stats()

    def test_sim_stats_keep_historical_keys(self):
        from repro.batfish.bgpsim import reset_sim_stats, sim_totals

        reset_sim_stats()
        totals = sim_totals()
        assert set(totals) == {
            "full_runs",
            "incremental_runs",
            "full_evaluations",
            "incremental_evaluations",
            "full_time_s",
            "incremental_time_s",
            "reused_entries",
            "invalidated_entries",
        }

    def test_memo_cache_counters_are_shared_by_name(self):
        from repro.symbolic.memo import MemoCache

        cache = MemoCache("t-shared")
        twin = MemoCache("t-shared")  # same name -> same counters
        snap = counters_snapshot()
        assert snap.get("memo.t-shared.hits", 0) == 0
        assert cache.hits == twin.hits == 0
