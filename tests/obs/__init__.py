"""Test package (keeps duplicate basenames importable)."""
