"""Shared fixtures for the test suite."""

import pytest

from repro.sampleconfigs import load_translation_source
from repro.juniper import translate_cisco_to_juniper
from repro.topology import generate_star_network
from repro.topology.reference import build_reference_configs


@pytest.fixture(scope="session")
def source_config():
    """The bundled Cisco config of the translation use case."""
    return load_translation_source()


@pytest.fixture()
def reference_juniper(source_config):
    """The correct Juniper translation (fresh copy per test)."""
    reference, _ = translate_cisco_to_juniper(load_translation_source())
    return reference


@pytest.fixture(scope="session")
def star7():
    """Figure 4's 7-router star."""
    return generate_star_network(7)


@pytest.fixture()
def star7_configs(star7):
    """Reference no-transit configs for the 7-router star."""
    return build_reference_configs(star7.topology)
