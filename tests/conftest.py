"""Shared fixtures for the test suite."""

import pytest

from repro.core import toggles
from repro.sampleconfigs import load_translation_source
from repro.juniper import translate_cisco_to_juniper
from repro.topology import generate_star_network
from repro.topology.reference import build_reference_configs


@pytest.fixture(autouse=True)
def _toggle_hygiene():
    """Fail any test that leaks a non-default global toggle or leaves a
    planted bug enabled.

    The A/B toggles and the planted-bug flags are process globals; a
    test that flips one and returns without restoring it silently
    changes the behavior of every test that runs after it.  The state
    is restored here either way, so one leak cannot cascade — but the
    leaking test itself fails loudly.
    """
    from repro.batfish.bgpsim import _plant_bug, _planted_bugs

    yield
    leaked = toggles.deviations()
    planted = sorted(_planted_bugs())
    toggles.restore_defaults()
    for name in planted:
        _plant_bug(name, False)
    assert not leaked, (
        "test leaked non-default global toggles: "
        + ", ".join(
            f"{name}={current!r} (default {default!r})"
            for name, current, default in leaked
        )
    )
    assert not planted, f"test left planted bugs enabled: {planted}"


@pytest.fixture(autouse=True)
def _metrics_hygiene():
    """Fail any test that leaks nonzero gauges, open spans, or leaves
    tracing enabled; zero the metrics registry either way.

    Counters and timers accumulate freely during a test (that is their
    job), but a gauge that doesn't return to zero means paired
    inc/dec calls went unbalanced, an open span means a context manager
    leaked, and enabled tracing buffers events forever.  Resetting the
    registry after every test keeps each test's deltas self-contained.
    """
    from repro import obs

    yield
    dirty_gauges = [
        (g.name, g.value) for g in obs.REGISTRY.gauges() if g.value
    ]
    open_spans = obs.open_spans()
    traced = obs.tracing_enabled()
    obs.set_tracing(False)
    obs.drain_events()
    obs.reset_metrics()
    assert not dirty_gauges, (
        f"test left nonzero gauges: {dirty_gauges}"
    )
    assert not open_spans, f"test left {open_spans} span(s) open"
    assert not traced, "test left phase tracing enabled"


@pytest.fixture(scope="session")
def source_config():
    """The bundled Cisco config of the translation use case."""
    return load_translation_source()


@pytest.fixture()
def reference_juniper(source_config):
    """The correct Juniper translation (fresh copy per test)."""
    reference, _ = translate_cisco_to_juniper(load_translation_source())
    return reference


@pytest.fixture(scope="session")
def star7():
    """Figure 4's 7-router star."""
    return generate_star_network(7)


@pytest.fixture()
def star7_configs(star7):
    """Reference no-transit configs for the 7-router star."""
    return build_reference_configs(star7.topology)
