"""Shared fixtures for the test suite."""

import pytest

from repro.core import toggles
from repro.sampleconfigs import load_translation_source
from repro.juniper import translate_cisco_to_juniper
from repro.topology import generate_star_network
from repro.topology.reference import build_reference_configs


@pytest.fixture(autouse=True)
def _toggle_hygiene():
    """Fail any test that leaks a non-default global toggle or leaves a
    planted bug enabled.

    The A/B toggles and the planted-bug flags are process globals; a
    test that flips one and returns without restoring it silently
    changes the behavior of every test that runs after it.  The state
    is restored here either way, so one leak cannot cascade — but the
    leaking test itself fails loudly.
    """
    from repro.batfish.bgpsim import _plant_bug, _planted_bugs

    yield
    leaked = toggles.deviations()
    planted = sorted(_planted_bugs())
    toggles.restore_defaults()
    for name in planted:
        _plant_bug(name, False)
    assert not leaked, (
        "test leaked non-default global toggles: "
        + ", ".join(
            f"{name}={current!r} (default {default!r})"
            for name, current, default in leaked
        )
    )
    assert not planted, f"test left planted bugs enabled: {planted}"


@pytest.fixture(scope="session")
def source_config():
    """The bundled Cisco config of the translation use case."""
    return load_translation_source()


@pytest.fixture()
def reference_juniper(source_config):
    """The correct Juniper translation (fresh copy per test)."""
    reference, _ = translate_cisco_to_juniper(load_translation_source())
    return reference


@pytest.fixture(scope="session")
def star7():
    """Figure 4's 7-router star."""
    return generate_star_network(7)


@pytest.fixture()
def star7_configs(star7):
    """Reference no-transit configs for the 7-router star."""
    return build_reference_configs(star7.topology)
