"""Tests for the Junos parser."""

from repro.juniper import parse_juniper
from repro.netmodel import (
    Action,
    Community,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    Protocol,
    SetLocalPref,
    SetMed,
)

_AS_BLOCK = "routing-options { autonomous-system 100; }\n"


def _parse(text):
    return parse_juniper(text)


class TestSystemAndInterfaces:
    def test_hostname(self):
        result = _parse("system { host-name r1; }")
        assert result.config.hostname == "r1"

    def test_interface_address(self):
        result = _parse(
            "interfaces { ge-0/0/0 { unit 0 { family inet { "
            "address 2.3.4.1/24; } } } }"
        )
        iface = result.config.get_interface("ge-0/0/0")
        assert str(iface.address) == "2.3.4.1"
        assert str(iface.prefix) == "2.3.4.0/24"

    def test_interface_description(self):
        result = _parse(
            "interfaces { ge-0/0/0 { description to provider; unit 0 { } } }"
        )
        assert result.config.get_interface("ge-0/0/0").description == "to provider"

    def test_bad_address_warns(self):
        result = _parse(
            "interfaces { ge-0/0/0 { unit 0 { family inet { "
            "address 999.1.1.1/24; } } } }"
        )
        assert result.warnings


class TestRoutingOptionsAndBgp:
    def test_autonomous_system(self):
        result = _parse(
            _AS_BLOCK
            + "protocols { bgp { group p { neighbor 2.3.4.5 { peer-as 200; } } } }"
        )
        assert result.config.bgp.asn == 100

    def test_router_id(self):
        result = _parse("routing-options { router-id 1.1.1.1; autonomous-system 5; }")
        assert str(result.config.bgp.router_id) == "1.1.1.1"

    def test_neighbor_policies(self):
        result = _parse(
            _AS_BLOCK
            + "protocols { bgp { group p { neighbor 2.3.4.5 { peer-as 200; "
            "import FROM_P; export TO_P; } } } }"
        )
        neighbor = result.config.bgp.get_neighbor("2.3.4.5")
        assert neighbor.import_policy == "FROM_P"
        assert neighbor.export_policy == "TO_P"
        assert neighbor.remote_as == 200

    def test_group_level_policies_inherited(self):
        result = _parse(
            _AS_BLOCK
            + "protocols { bgp { group p { export TO_P; peer-as 200; "
            "neighbor 2.3.4.5; } } }"
        )
        neighbor = result.config.bgp.get_neighbor("2.3.4.5")
        assert neighbor.export_policy == "TO_P"
        assert neighbor.remote_as == 200

    def test_neighbor_overrides_group(self):
        result = _parse(
            _AS_BLOCK
            + "protocols { bgp { group p { export TO_P; neighbor 2.3.4.5 { "
            "peer-as 200; export SPECIAL; } } } }"
        )
        assert result.config.bgp.get_neighbor("2.3.4.5").export_policy == "SPECIAL"

    def test_missing_peer_as_warns(self):
        result = _parse(
            _AS_BLOCK
            + "protocols { bgp { group p { neighbor 2.3.4.5; } } }"
        )
        assert any("peer-as" in w.comment for w in result.warnings)

    def test_missing_local_as_warns(self):
        """Table 2 row 1: no routing-options AS and no local-as."""
        result = _parse(
            "protocols { bgp { group p { neighbor 2.3.4.5 { peer-as 200; } } } }"
        )
        assert any("local AS" in w.comment for w in result.warnings)

    def test_explicit_local_as_suppresses_warning(self):
        result = _parse(
            "protocols { bgp { group p { neighbor 2.3.4.5 { peer-as 200; "
            "local-as 100; } } } }"
        )
        assert not any("local AS" in w.comment for w in result.warnings)


class TestOspf:
    def test_area_interface_metric(self):
        result = _parse(
            "interfaces { lo0 { unit 0 { family inet { address 1.1.1.1/32; } } } }"
            "protocols { ospf { area 0.0.0.0 { interface lo0.0 { metric 1; } } } }"
        )
        assert result.config.get_interface("lo0").ospf_cost == 1

    def test_passive(self):
        result = _parse(
            "interfaces { lo0 { unit 0 { family inet { address 1.1.1.1/32; } } } }"
            "protocols { ospf { area 0 { interface lo0.0 { passive; } } } }"
        )
        assert result.config.ospf.is_passive("lo0.0")

    def test_area_recorded(self):
        result = _parse(
            "protocols { ospf { area 0.0.0.0 { interface ge-0/0/0.0; } } }"
        )
        assert result.config.ospf.area_interfaces[0] == ["ge-0/0/0.0"]


class TestPolicyOptions:
    def test_prefix_list(self):
        result = _parse(
            "policy-options { prefix-list nets { 1.2.3.0/24; 4.5.6.0/24; } }"
        )
        entries = result.config.prefix_lists["nets"].entries
        assert len(entries) == 2
        assert all(e.range.is_exact() for e in entries)

    def test_invalid_range_syntax_warns(self):
        """GPT-4's invented 1.2.3.0/24-32 form (Table 1's example)."""
        result = _parse(
            "policy-options { prefix-list our-networks { 1.2.3.0/24-32; } }"
        )
        (warning,) = result.warnings
        assert "There is a syntax error" in warning.comment
        assert "1.2.3.0/24-32" in warning.text

    def test_named_community(self):
        result = _parse(
            "policy-options { community TAG members 100:1; }"
        )
        clist = result.config.community_lists["TAG"]
        assert clist.permits([Community(100, 1)])

    def test_named_community_bracket_members(self):
        result = _parse(
            "policy-options { community TAG members [ 100:1 101:1 ]; }"
        )
        assert len(result.config.community_lists["TAG"].permitted_communities()) == 2

    def test_policy_statement_terms(self):
        result = _parse(
            "policy-options { policy-statement P { "
            "term a { from { prefix-list nets; } then { metric 50; accept; } } "
            "term b { then reject; } } }"
        )
        rm = result.config.route_maps["P"]
        assert len(rm.clauses) == 2
        first, second = rm.clauses
        assert first.action is Action.PERMIT
        assert first.matches == [MatchPrefixList("nets")]
        assert first.sets == [SetMed(50)]
        assert second.action is Action.DENY

    def test_route_filter_exact(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "route-filter 1.2.3.0/24 exact; } then accept; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert isinstance(condition, MatchPrefixRanges)
        assert condition.ranges[0].is_exact()

    def test_route_filter_orlonger(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "route-filter 1.2.3.0/24 orlonger; } then accept; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert condition.ranges[0].high == 32

    def test_route_filter_prefix_length_range(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "route-filter 1.2.3.0/24 prefix-length-range /25-/30; } "
            "then accept; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert (condition.ranges[0].low, condition.ranges[0].high) == (25, 30)

    def test_route_filter_upto(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "route-filter 10.0.0.0/8 upto /16; } then accept; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert (condition.ranges[0].low, condition.ranges[0].high) == (8, 16)

    def test_bad_route_filter_modifier_warns(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "route-filter 1.2.3.0/24 sideways; } then accept; } } }"
        )
        assert any("syntax error" in w.comment for w in result.warnings)

    def test_from_protocol(self):
        result = _parse(
            "policy-options { policy-statement P { term a { from { "
            "protocol bgp; } then accept; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert condition == MatchProtocol(Protocol.BGP)

    def test_from_community(self):
        result = _parse(
            "policy-options { community TAG members 100:1; "
            "policy-statement P { term a { from { community TAG; } "
            "then reject; } } }"
        )
        (condition,) = result.config.route_maps["P"].clauses[0].matches
        assert condition == MatchCommunityList("TAG")

    def test_then_community_add_resolves_members(self):
        result = _parse(
            "policy-options { community TAG members 100:1; "
            "policy-statement P { term a { then { community add TAG; "
            "accept; } } } }"
        )
        (action,) = result.config.route_maps["P"].clauses[0].sets
        assert action.additive
        assert action.communities == (Community(100, 1),)

    def test_then_community_undefined_warns(self):
        result = _parse(
            "policy-options { policy-statement P { term a { then { "
            "community add GHOST; accept; } } } }"
        )
        assert any("not defined" in w.comment for w in result.warnings)

    def test_then_local_preference(self):
        result = _parse(
            "policy-options { policy-statement P { term a { then { "
            "local-preference 250; accept; } } } }"
        )
        assert SetLocalPref(250) in result.config.route_maps["P"].clauses[0].sets

    def test_term_names_preserved(self):
        result = _parse(
            "policy-options { policy-statement P { term redistribute-ospf { "
            "then accept; } } }"
        )
        assert result.config.route_maps["P"].clauses[0].term_name == (
            "redistribute-ospf"
        )


class TestRobustness:
    def test_unknown_top_level_warns(self):
        assert _parse("chassis { alarm red; }").warnings

    def test_unbalanced_braces_degrade_to_warning(self):
        result = _parse("system {")
        assert any("lexical" in w.comment for w in result.warnings)
