"""Tests for the Junos brace-tree lexer."""

import pytest

from repro.juniper.lexer import LexError, lex_juniper


class TestLexer:
    def test_leaf_statement(self):
        (stmt,) = lex_juniper("host-name r1;")
        assert stmt.words == ("host-name", "r1")
        assert not stmt.is_block

    def test_block_statement(self):
        (stmt,) = lex_juniper("system { host-name r1; }")
        assert stmt.keyword == "system"
        assert stmt.is_block
        assert stmt.children[0].words == ("host-name", "r1")

    def test_nested_blocks(self):
        (stmt,) = lex_juniper(
            "interfaces { ge-0/0/0 { unit 0 { family inet { "
            "address 1.0.0.1/24; } } } }"
        )
        inet = stmt.children[0].children[0].children[0]
        assert inet.words == ("family", "inet")
        assert inet.children[0].words == ("address", "1.0.0.1/24")

    def test_line_numbers(self):
        statements = lex_juniper("system {\n    host-name r1;\n}\n")
        assert statements[0].line == 1
        assert statements[0].children[0].line == 2

    def test_hash_comment_skipped(self):
        (stmt,) = lex_juniper("# comment\nhost-name r1;\n")
        assert stmt.words == ("host-name", "r1")

    def test_c_style_comment_skipped(self):
        (stmt,) = lex_juniper("/* multi\nline */ host-name r1;")
        assert stmt.words == ("host-name", "r1")

    def test_quoted_string_is_one_token(self):
        (stmt,) = lex_juniper('as-path-prepend "100 100";')
        assert stmt.words == ("as-path-prepend", "100 100")

    def test_missing_semicolon_before_brace_tolerated(self):
        (stmt,) = lex_juniper("system { host-name r1 }")
        assert stmt.children[0].words == ("host-name", "r1")

    def test_unbalanced_close_raises(self):
        with pytest.raises(LexError):
            lex_juniper("}")

    def test_unbalanced_open_raises(self):
        with pytest.raises(LexError):
            lex_juniper("system {")

    def test_find(self):
        (stmt,) = lex_juniper("system { host-name r1; services; }")
        assert stmt.find("host-name").words == ("host-name", "r1")
        assert stmt.find("nothing") is None

    def test_find_all(self):
        (stmt,) = lex_juniper("bgp { group a { } group b { } }")
        assert len(stmt.find_all("group")) == 2

    def test_text(self):
        (stmt,) = lex_juniper("peer-as 200;")
        assert stmt.text() == "peer-as 200"

    def test_multiple_top_level_statements(self):
        statements = lex_juniper("system { }\ninterfaces { }\n")
        assert [s.keyword for s in statements] == ["system", "interfaces"]
