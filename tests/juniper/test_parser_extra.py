"""Additional Junos parser/generator coverage (prepends, empty-space
terms, deny-bearing prefix lists)."""

from repro.cisco import parse_cisco
from repro.juniper import (
    generate_juniper,
    parse_juniper,
    translate_cisco_to_juniper,
)
from repro.netmodel import Prefix, Route
from repro.netmodel.routing_policy import SetAsPathPrepend


class TestAsPathPrepend:
    def test_parse_as_path_prepend(self):
        result = parse_juniper(
            'policy-options { policy-statement P { term a { then { '
            'as-path-prepend "100 100"; accept; } } } }'
        )
        assert not result.warnings
        (action,) = result.config.route_maps["P"].clauses[0].sets
        assert action == SetAsPathPrepend(100, 2)

    def test_parse_single_prepend(self):
        result = parse_juniper(
            "policy-options { policy-statement P { term a { then { "
            "as-path-prepend 7; accept; } } } }"
        )
        (action,) = result.config.route_maps["P"].clauses[0].sets
        assert action == SetAsPathPrepend(7, 1)

    def test_invalid_prepend_warns(self):
        result = parse_juniper(
            'policy-options { policy-statement P { term a { then { '
            'as-path-prepend "abc"; accept; } } } }'
        )
        assert any("as-path-prepend" in w.text for w in result.warnings)

    def test_prepend_roundtrips(self):
        text = (
            "hostname r1\n"
            "route-map OUT permit 10\n"
            " set as-path prepend 1 1\n"
            "router bgp 100\n"
            " neighbor 9.0.0.2 remote-as 9\n"
            " neighbor 9.0.0.2 route-map OUT out\n"
        )
        source = parse_cisco(text).config
        juniper, _ = translate_cisco_to_juniper(source)
        rendered = generate_juniper(juniper)
        assert 'as-path-prepend "1 1"' in rendered
        reparsed = parse_juniper(rendered)
        assert not reparsed.warnings
        (action,) = reparsed.config.route_maps["OUT"].clauses[0].sets
        assert action == SetAsPathPrepend(1, 2)


class TestDenyBearingPrefixLists:
    def _cisco(self, prefix_list_lines):
        return (
            "hostname r1\n"
            + prefix_list_lines
            + "route-map OUT permit 10\n"
            " match ip address prefix-list PL\n"
            "router bgp 100\n"
            " neighbor 9.0.0.2 remote-as 9\n"
            " neighbor 9.0.0.2 route-map OUT out\n"
        )

    def test_deny_entry_lowers_to_permitted_space(self):
        """A list with deny shadowing must translate to route-filters
        over the *permitted* space only."""
        text = self._cisco(
            "ip prefix-list PL seq 5 deny 1.2.3.0/24\n"
            "ip prefix-list PL seq 10 permit 1.2.3.0/24 le 32\n"
        )
        source = parse_cisco(text).config
        juniper, _ = translate_cisco_to_juniper(source)
        rendered = generate_juniper(juniper)
        reparsed = parse_juniper(rendered)
        assert not reparsed.warnings
        rebuilt = reparsed.config
        out = rebuilt.route_maps["OUT"]
        denied = Route(prefix=Prefix.parse("1.2.3.0/24"))
        permitted = Route(prefix=Prefix.parse("1.2.3.0/25"))
        assert not out.evaluate(denied, rebuilt).permitted
        assert out.evaluate(permitted, rebuilt).permitted

    def test_deny_all_list_drops_term(self):
        """A match on an all-deny list can never fire: the rendered
        policy must omit the term, not turn it into match-anything."""
        text = self._cisco("ip prefix-list PL seq 5 deny 0.0.0.0/0 le 32\n")
        source = parse_cisco(text).config
        juniper, _ = translate_cisco_to_juniper(source)
        rendered = generate_juniper(juniper)
        reparsed = parse_juniper(rendered)
        rebuilt = reparsed.config
        out = rebuilt.route_maps["OUT"]
        anything = Route(prefix=Prefix.parse("9.9.9.0/24"))
        assert not out.evaluate(anything, rebuilt).permitted

    def test_semantics_preserved_against_source(self):
        """Spot-check: source and translation agree on boundary routes."""
        text = self._cisco(
            "ip prefix-list PL seq 5 deny 1.2.3.0/24 ge 30\n"
            "ip prefix-list PL seq 10 permit 1.2.3.0/24 ge 24\n"
        )
        source = parse_cisco(text).config
        juniper, _ = translate_cisco_to_juniper(source)
        rebuilt = parse_juniper(generate_juniper(juniper)).config
        for candidate in ("1.2.3.0/24", "1.2.3.0/29", "1.2.3.0/30", "1.2.3.0/32"):
            route = Route(prefix=Prefix.parse(candidate))
            expected = source.route_maps["OUT"].evaluate(route, source).action
            actual = rebuilt.route_maps["OUT"].evaluate(route, rebuilt).action
            assert expected is actual, candidate
