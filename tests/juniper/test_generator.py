"""Tests for the Junos generator and the reference translator."""

from repro.cisco import parse_cisco
from repro.juniper import (
    generate_juniper,
    parse_juniper,
    translate_cisco_to_juniper,
)
from repro.netmodel import (
    Action,
    MatchPrefixRanges,
    MatchProtocol,
    Protocol,
)
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO, load_translation_source


def _reference():
    juniper, notes = translate_cisco_to_juniper(load_translation_source())
    return juniper, notes


class TestGenerator:
    def test_reference_renders_and_reparses_clean(self):
        juniper, _ = _reference()
        text = generate_juniper(juniper)
        result = parse_juniper(text)
        assert not result.warnings

    def test_hostname_block(self):
        juniper, _ = _reference()
        assert "host-name as100border1;" in generate_juniper(juniper)

    def test_autonomous_system_rendered(self):
        juniper, _ = _reference()
        assert "autonomous-system 100;" in generate_juniper(juniper)

    def test_route_filter_orlonger_for_ge(self):
        """our-networks (1.2.3.0/24 ge 24) lowers to orlonger."""
        juniper, _ = _reference()
        assert "route-filter 1.2.3.0/24 orlonger" in generate_juniper(juniper)

    def test_ospf_area_with_passive_and_metric(self):
        juniper, _ = _reference()
        text = generate_juniper(juniper)
        assert "metric 1;" in text
        assert "passive;" in text

    def test_bgp_groups_per_neighbor(self):
        juniper, _ = _reference()
        text = generate_juniper(juniper)
        assert "neighbor 2.3.4.5 {" in text
        assert "peer-as 200;" in text

    def test_named_community_synthesized_for_set(self):
        """set community 100:300 additive needs a named community."""
        juniper, _ = _reference()
        text = generate_juniper(juniper)
        assert "members 100:300" in text
        assert "community add" in text

    def test_roundtrip_preserves_policy_semantics(self):
        juniper, _ = _reference()
        text = generate_juniper(juniper)
        reparsed = parse_juniper(text).config
        assert set(reparsed.route_maps) == set(juniper.route_maps)


class TestTranslator:
    def test_notes_record_range_lowering(self):
        _, notes = _reference()
        assert "our-networks" in notes.range_lowered_lists

    def test_notes_record_redistribution_fold(self):
        _, notes = _reference()
        assert "to_provider" in notes.redistribution_policies
        assert "to_provider" in notes.guarded_export_policies

    def test_redistributions_cleared(self):
        juniper, _ = _reference()
        assert juniper.bgp.redistributions == []

    def test_export_terms_gain_protocol_guard(self):
        juniper, _ = _reference()
        to_provider = juniper.route_maps["to_provider"]
        first = to_provider.clauses[0]
        assert MatchProtocol(Protocol.BGP) in first.matches

    def test_redistribution_term_added_with_guard(self):
        juniper, _ = _reference()
        to_provider = juniper.route_maps["to_provider"]
        redistribute_terms = [
            clause
            for clause in to_provider.clauses
            if clause.term_name == "redistribute-ospf"
        ]
        assert len(redistribute_terms) == 1
        assert MatchProtocol(Protocol.OSPF) in redistribute_terms[0].matches

    def test_ranged_matches_lowered_inline(self):
        juniper, _ = _reference()
        to_provider = juniper.route_maps["to_provider"]
        assert any(
            isinstance(condition, MatchPrefixRanges)
            for clause in to_provider.clauses
            for condition in clause.matches
        )

    def test_trailing_deny_stays_last(self):
        """Redistribution terms must precede an unconditional reject."""
        text = (
            BATFISH_EXAMPLE_CISCO
            + "route-map to_provider deny 999\n"
        )
        source = parse_cisco(text).config
        juniper, _ = translate_cisco_to_juniper(source)
        clauses = juniper.route_maps["to_provider"].clauses
        assert clauses[-1].action is Action.DENY
        assert clauses[-1].matches == []
        assert any(c.term_name == "redistribute-ospf" for c in clauses[:-1])

    def test_vendor_flag_set(self):
        juniper, _ = _reference()
        assert juniper.vendor.value == "juniper"

    def test_source_not_mutated(self):
        source = load_translation_source()
        before = len(source.bgp.redistributions)
        translate_cisco_to_juniper(source)
        assert len(source.bgp.redistributions) == before
