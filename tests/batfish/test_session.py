"""Tests for the pybatfish-like session facade."""

import pytest

from repro.batfish import BfSessionError, Session
from repro.cisco import generate_cisco
from repro.netmodel import Community, Prefix
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO
from repro.symbolic import RouteConstraint


@pytest.fixture()
def star_session(star7_configs):
    session = Session()
    session.init_snapshot_from_texts(
        {
            f"{name}.cfg": generate_cisco(cfg)
            for name, cfg in star7_configs.items()
        },
        name="star7",
    )
    return session


class TestSessionBasics:
    def test_no_snapshot_raises(self):
        with pytest.raises(BfSessionError):
            Session().snapshot

    def test_unknown_node_raises(self, star_session):
        with pytest.raises(BfSessionError):
            star_session.config_of("ghost")

    def test_parse_warning_clean_snapshot(self, star_session):
        assert star_session.q.parse_warning() == []

    def test_parse_warning_reports_bad_file(self):
        session = Session()
        session.init_snapshot_from_texts({"bad.cfg": "exit\nrouter bgp 1\n"})
        assert session.q.parse_warning()

    def test_parse_warning_for_node(self):
        session = Session()
        session.init_snapshot_from_texts(
            {"good.cfg": "hostname g\n", "bad.cfg": "exit\n"}
        )
        assert session.q.parse_warning_for("bad.cfg")
        assert session.q.parse_warning_for("g") == []

    def test_undefined_references(self):
        session = Session()
        session.init_snapshot_from_texts(
            {
                "r.cfg": (
                    "router bgp 1\n"
                    " neighbor 1.0.0.2 remote-as 2\n"
                    " neighbor 1.0.0.2 route-map GHOST out\n"
                )
            }
        )
        assert session.q.undefined_references("r") == ["route-map GHOST"]

    def test_init_snapshot_from_directory(self, tmp_path):
        (tmp_path / "c1.cfg").write_text(BATFISH_EXAMPLE_CISCO)
        session = Session()
        snapshot = session.init_snapshot(tmp_path)
        assert "c1.cfg" in snapshot.configs


class TestQuestions:
    def test_search_route_policies(self, star_session):
        results = star_session.q.search_route_policies(
            "R1",
            "FILTER_COMM_OUT_R2",
            action="permit",
            input_constraints=RouteConstraint.with_community(Community(101, 1)),
        )
        assert results == []  # R3's tag is filtered at R2's egress

    def test_search_route_policies_finds_violation(self, star_session):
        results = star_session.q.search_route_policies(
            "R1",
            "FILTER_COMM_OUT_R2",
            action="permit",
            input_constraints=RouteConstraint.with_community(Community(100, 1)),
        )
        # R2's own tag is not filtered toward R2 (AS-loop handles it).
        assert results

    def test_bgp_session_compatibility(self, star_session):
        rows = star_session.q.bgp_session_compatibility()
        internal = [row for row in rows if row.established]
        # 6 spoke sessions, seen from both ends.
        assert len(internal) == 12
        external = [row for row in rows if not row.established]
        # 1 customer + 6 ISP peers have no device behind them.
        assert len(external) == 7

    def test_routes_rows(self, star_session):
        rows = star_session.q.routes("R2")
        prefixes = {row["prefix"] for row in rows}
        assert "100.0.0.0/24" in prefixes

    def test_reachable(self, star_session):
        assert star_session.q.reachable("R2", "100.0.0.0/24")
        assert not star_session.q.reachable("R2", Prefix.parse("2.0.0.0/24"))
