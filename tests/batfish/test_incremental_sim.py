"""Incremental BGP re-simulation: differential proofs against full runs.

The contract under test: a :class:`SimulationState` given the set of
changed routers converges to *exactly* the state a from-scratch
:class:`BgpSimulation` reaches on the same configs — same RIBs (routes,
attributes, provenance paths) and same global-check verdicts — on every
topology family, for randomized single-router config edits.
"""

import copy
import random
import zlib

import pytest

from repro.batfish.bgpsim import (
    BgpSimulation,
    SimulationState,
    batched_evaluation_enabled,
    incremental_simulation_enabled,
    reset_sim_stats,
    rib_snapshots,
    set_batched_evaluation,
    set_incremental_simulation,
    sim_totals,
)
from repro.lightyear.compose import (
    IncrementalGlobalChecker,
    _config_fingerprints,
    check_global_no_transit,
    last_global_sim_stats,
    reset_simulation_states,
)
from repro.netmodel.ip import Prefix
from repro.netmodel.routing_policy import (
    Action,
    RouteMap,
    RouteMapClause,
    SetCommunity,
)
from repro.topology.families import FAMILIES, generate_network
from repro.topology.reference import build_reference_configs

SIZE = 6


@pytest.fixture(autouse=True)
def _fresh_simulation_state():
    reset_simulation_states()
    set_incremental_simulation(True)
    yield
    reset_simulation_states()
    set_incremental_simulation(True)


def _network(family, size=SIZE):
    net = generate_network(family, size)
    return net.topology, build_reference_configs(net.topology)


def _assert_matches_full(state, configs, topology=None):
    """The warm state must equal a from-scratch run, RIBs and verdicts."""
    full = BgpSimulation(copy.deepcopy(configs))
    full.run()
    assert rib_snapshots(state.simulation) == rib_snapshots(full)
    if topology is not None:
        reset_simulation_states()  # force the check below to run cold
        cold = check_global_no_transit(copy.deepcopy(configs), topology)
        warm = _check_from_simulation(state, configs, topology)
        assert warm.holds == cold.holds
        assert warm.describe() == cold.describe()


def _check_from_simulation(state, configs, topology):
    """Run the global check against the *warm* state's simulation.

    Seeding the checker with the configs' current fingerprints makes
    the derived delta empty, so the verdict really is computed from the
    incrementally-converged RIBs (an empty-fingerprint checker would
    fall back to a fresh full convergence and prove nothing)."""
    checker = IncrementalGlobalChecker()
    checker._state = state
    checker._fingerprints = _config_fingerprints(configs)
    verdict = check_global_no_transit(configs, topology, checker=checker)
    assert checker.last_stats.incremental
    return verdict


# -- randomized single-router edits -------------------------------------------


def _replace_filter_with_permit_all(config, rng):
    names = [n for n in config.route_maps if n.startswith("FILTER_COMM_OUT_")]
    if not names:
        return False
    name = rng.choice(names)
    replacement = RouteMap(name)
    replacement.add_clause(RouteMapClause(seq=10, action=Action.PERMIT))
    config.route_maps[name] = replacement
    return True


def _drop_first_deny(config, rng):
    names = [n for n in config.route_maps if n.startswith("FILTER_COMM_OUT_")]
    for name in rng.sample(names, k=len(names)):
        route_map = config.route_maps[name]
        denies = [c for c in route_map.clauses if c.action is Action.DENY]
        if denies:
            route_map.clauses.remove(denies[0])
            return True
    return False


def _make_ingress_non_additive(config, rng):
    names = [n for n in config.route_maps if n.startswith("ADD_COMM_")]
    for name in rng.sample(names, k=len(names)):
        for clause in config.route_maps[name].clauses:
            for index, action in enumerate(clause.sets):
                if isinstance(action, SetCommunity) and action.additive:
                    clause.sets[index] = SetCommunity(
                        action.communities, additive=False
                    )
                    return True
    return False


def _detach_export_policy(config, rng):
    if config.bgp is None:
        return False
    attached = [
        n for n in config.bgp.neighbors.values() if n.export_policy is not None
    ]
    if not attached:
        return False
    rng.choice(attached).export_policy = None
    return True


def _announce_extra_network(config, rng):
    if config.bgp is None:
        return False
    bogus = Prefix.parse(f"203.0.{rng.randrange(1, 250)}.0/24")
    if bogus in config.bgp.networks:
        return False
    config.bgp.announce(bogus)
    return True


def _drop_a_neighbor(config, rng):
    """Removes one BGP session entirely (topology-affecting edit)."""
    if config.bgp is None or len(config.bgp.neighbors) < 2:
        return False
    ip = rng.choice(sorted(config.bgp.neighbors, key=str))
    config.bgp.remove_neighbor(ip)
    return True


MUTATIONS = [
    _replace_filter_with_permit_all,
    _drop_first_deny,
    _make_ingress_non_additive,
    _detach_export_policy,
    _announce_extra_network,
    _drop_a_neighbor,
]


class TestDifferentialPerFamily:
    """Randomized single-router edits: incremental == full, always."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_edit_sequence_matches_from_scratch(self, family, seed):
        topology, reference = _network(family)
        rng = random.Random(zlib.crc32(f"{family}:{seed}".encode()))
        current = copy.deepcopy(reference)
        state = SimulationState(copy.deepcopy(current))
        incremental_seen = 0
        for _step in range(6):
            nxt = copy.deepcopy(current)
            router = rng.choice(sorted(nxt))
            mutation = rng.choice(MUTATIONS)
            if not mutation(nxt[router], rng):
                _announce_extra_network(nxt[router], rng)
            stats = state.resimulate(copy.deepcopy(nxt), {router})
            incremental_seen += stats.incremental
            _assert_matches_full(state, nxt, topology)
            current = nxt
        assert incremental_seen == 6  # never silently fell back

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_revert_to_reference_matches(self, family):
        """Edit a router, then restore it: back to the reference state."""
        topology, reference = _network(family)
        rng = random.Random(7)
        state = SimulationState(copy.deepcopy(reference))
        broken = copy.deepcopy(reference)
        router = sorted(broken)[2]
        _replace_filter_with_permit_all(broken[router], rng) or (
            _announce_extra_network(broken[router], rng)
        )
        state.resimulate(copy.deepcopy(broken), {router})
        _assert_matches_full(state, broken, topology)
        restored = copy.deepcopy(reference)
        stats = state.resimulate(copy.deepcopy(restored), {router})
        assert stats.incremental
        _assert_matches_full(state, restored, topology)


class TestSimulationState:
    def test_no_change_resimulation_is_cheap_and_identical(self):
        _topology, configs = _network("mesh")
        state = SimulationState(copy.deepcopy(configs))
        stats = state.resimulate(copy.deepcopy(configs), set())
        assert stats.incremental
        assert stats.evaluations == 0
        assert stats.reused_entries > 0
        _assert_matches_full(state, configs)

    def test_unknown_delta_forces_full_run(self):
        _topology, configs = _network("ring")
        state = SimulationState(copy.deepcopy(configs))
        stats = state.resimulate(copy.deepcopy(configs), None)
        assert stats.mode == "full"

    def test_disabled_toggle_forces_full_run(self):
        _topology, configs = _network("chain")
        state = SimulationState(copy.deepcopy(configs))
        set_incremental_simulation(False)
        try:
            assert not incremental_simulation_enabled()
            stats = state.resimulate(copy.deepcopy(configs), set())
            assert stats.mode == "full"
        finally:
            set_incremental_simulation(True)

    def test_router_removal_and_return(self):
        topology, configs = _network("mesh")
        state = SimulationState(copy.deepcopy(configs))
        without = {
            name: copy.deepcopy(config)
            for name, config in configs.items()
            if name != "R4"
        }
        stats = state.resimulate(copy.deepcopy(without), set())
        assert stats.incremental  # removal detected without being named
        _assert_matches_full(state, without)
        stats = state.resimulate(copy.deepcopy(configs), set())
        assert stats.incremental
        _assert_matches_full(state, configs, topology)

    def test_state_before_convergence_raises(self):
        with pytest.raises(ValueError, match="no converged simulation"):
            SimulationState().simulation

    def test_stats_accounting(self):
        reset_sim_stats()
        _topology, configs = _network("star")
        state = SimulationState(copy.deepcopy(configs))
        state.resimulate(copy.deepcopy(configs), set())
        totals = sim_totals()
        assert totals["full_runs"] == 1
        assert totals["incremental_runs"] == 1
        assert totals["full_evaluations"] > 0


class TestExplicitDeltas:
    """Callers that know what they changed skip fingerprint diffing."""

    def test_explicit_delta_skips_fingerprinting(self):
        topology, configs = _network("mesh")
        checker = IncrementalGlobalChecker()
        checker.simulate(copy.deepcopy(configs))
        assert checker._fingerprints  # baseline derived on the full run
        rng = random.Random(5)
        broken = copy.deepcopy(configs)
        assert _replace_filter_with_permit_all(broken["R3"], rng)
        checker.simulate(copy.deepcopy(broken), {"R3"})
        assert checker.last_stats.incremental
        assert checker.last_stats.dirty_routers == 1
        assert checker._fingerprints is None  # never computed

    def test_explicit_then_derived_falls_back_to_full(self):
        """A derived call after an explicit one must not trust the
        stale fingerprint baseline — it re-converges fully instead."""
        topology, configs = _network("ring")
        checker = IncrementalGlobalChecker()
        check_global_no_transit(
            copy.deepcopy(configs), topology, checker=checker
        )
        rng = random.Random(9)
        edited = copy.deepcopy(configs)
        assert _replace_filter_with_permit_all(edited["R4"], rng)
        check_global_no_transit(
            copy.deepcopy(edited), topology,
            checker=checker, changed_routers={"R4"},
        )
        assert checker.last_stats.incremental
        verdict = check_global_no_transit(
            copy.deepcopy(configs), topology, checker=checker
        )
        assert checker.last_stats.mode == "full"
        assert verdict.holds

    def test_explicit_delta_matches_cold_verdict(self):
        topology, configs = _network("chain")
        checker = IncrementalGlobalChecker()
        check_global_no_transit(
            copy.deepcopy(configs), topology, checker=checker
        )
        rng = random.Random(2)
        edited = copy.deepcopy(configs)
        assert _drop_first_deny(edited["R3"], rng)
        warm = check_global_no_transit(
            copy.deepcopy(edited), topology,
            checker=checker, changed_routers={"R3"},
        )
        reset_simulation_states()
        cold = check_global_no_transit(copy.deepcopy(edited), topology)
        assert warm.holds == cold.holds
        assert warm.describe() == cold.describe()

    def test_registry_ignores_explicit_deltas(self):
        """The process-local registry is shared state: a caller's
        private delta must not steer it (a wrong delta would corrupt
        every later caller's verdicts)."""
        topology, configs = _network("star")
        check_global_no_transit(copy.deepcopy(configs), topology)
        rng = random.Random(4)
        edited = copy.deepcopy(configs)
        _announce_extra_network(edited["R2"], rng)
        # Lie about the delta: claim nothing changed.  The registry
        # path must fingerprint anyway and still find R2.
        check_global_no_transit(
            copy.deepcopy(edited), topology, changed_routers=set()
        )
        stats = last_global_sim_stats()
        assert stats.incremental
        assert stats.dirty_routers == 1


class TestRoledDifferential:
    """The differential contract extends to role-assigned networks:
    multi-homed ISPs and multiple customers (the FAMILIES-parametrized
    tests above already cover random/waxman under their default
    single-homed role layout)."""

    @pytest.mark.parametrize("family", ["random", "waxman"])
    @pytest.mark.parametrize("roles", ["c2i2h2", "c1i2h1p1"])
    def test_edit_sequence_matches_from_scratch(self, family, roles):
        net = generate_network(family, 9, seed=3, roles=roles)
        topology = net.topology
        reference = build_reference_configs(topology)
        rng = random.Random(zlib.crc32(f"{family}:{roles}".encode()))
        current = copy.deepcopy(reference)
        state = SimulationState(copy.deepcopy(current))
        for _step in range(4):
            nxt = copy.deepcopy(current)
            router = rng.choice(sorted(nxt))
            mutation = rng.choice(MUTATIONS)
            if not mutation(nxt[router], rng):
                _announce_extra_network(nxt[router], rng)
            stats = state.resimulate(copy.deepcopy(nxt), {router})
            assert stats.incremental
            _assert_matches_full(state, nxt, topology)
            current = nxt


class TestBatchedEvaluation:
    """Per-session batched policy evaluation must never change a RIB."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_batched_equals_per_entry(self, family):
        _topology, configs = _network(family)
        assert batched_evaluation_enabled()
        batched = BgpSimulation(copy.deepcopy(configs))
        batched.run()
        set_batched_evaluation(False)
        try:
            per_entry = BgpSimulation(copy.deepcopy(configs))
            per_entry.run()
        finally:
            set_batched_evaluation(True)
        assert rib_snapshots(batched) == rib_snapshots(per_entry)
        assert batched.evaluations == per_entry.evaluations

    def test_undefined_list_behaves_lazily_like_evaluate(self):
        """A clause referencing an undefined list must only reject the
        routes that actually consult it — batch preparation must not
        turn the lazy per-route error into an eager one."""
        from repro.netmodel.ip import Prefix
        from repro.netmodel.route import Route
        from repro.netmodel.routing_policy import (
            MatchCommunityList,
            MatchPrefixList,
            PolicyEvaluationError,
            RouteMap,
            RouteMapClause,
        )
        from repro.netmodel.device import RouterConfig, Vendor
        from repro.netmodel.prefixlist import PrefixList
        from repro.netmodel.ip import PrefixRange

        config = RouterConfig(hostname="X", vendor=Vendor.CISCO)
        narrow = PrefixList("NARROW")
        narrow.add("permit", PrefixRange.exact(Prefix.parse("10.0.0.0/24")))
        config.add_prefix_list(narrow)
        route_map = RouteMap("MIXED")
        guarded = RouteMapClause(seq=10, action=Action.DENY)
        guarded.matches.append(MatchPrefixList("NARROW"))
        guarded.matches.append(MatchCommunityList("UNDEFINED"))
        route_map.add_clause(guarded)
        route_map.add_clause(RouteMapClause(seq=20, action=Action.PERMIT))
        misses = Route(prefix=Prefix.parse("99.0.0.0/24"))
        hits = Route(prefix=Prefix.parse("10.0.0.0/24"))
        prepared = route_map.prepare(config)
        assert prepared.evaluate(misses).action is Action.PERMIT
        with pytest.raises(PolicyEvaluationError):
            prepared.evaluate(hits)
        # identical to the per-route path
        assert route_map.evaluate(misses, config).action is Action.PERMIT
        with pytest.raises(PolicyEvaluationError):
            route_map.evaluate(hits, config)


class TestWarmGlobalCheck:
    """check_global_no_transit reuses warm state per topology."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_repeat_check_goes_incremental_with_same_verdict(self, family):
        topology, configs = _network(family)
        first = check_global_no_transit(copy.deepcopy(configs), topology)
        assert last_global_sim_stats().mode == "full"
        second = check_global_no_transit(copy.deepcopy(configs), topology)
        assert last_global_sim_stats().incremental
        assert last_global_sim_stats().dirty_routers == 0
        assert second.holds == first.holds
        assert second.describe() == first.describe()

    def test_changed_router_is_fingerprint_detected(self):
        topology, configs = _network("mesh")
        good = check_global_no_transit(copy.deepcopy(configs), topology)
        assert good.holds
        rng = random.Random(3)
        broken = copy.deepcopy(configs)
        assert _replace_filter_with_permit_all(broken["R3"], rng)
        verdict = check_global_no_transit(broken, topology)
        stats = last_global_sim_stats()
        assert stats.incremental
        assert stats.dirty_routers == 1
        assert not verdict.holds
        reset_simulation_states()
        cold = check_global_no_transit(copy.deepcopy(broken), topology)
        assert cold.describe() == verdict.describe()

    def test_disabled_incremental_still_checks_correctly(self):
        topology, configs = _network("ring")
        warm = check_global_no_transit(copy.deepcopy(configs), topology)
        set_incremental_simulation(False)
        try:
            cold = check_global_no_transit(copy.deepcopy(configs), topology)
            assert last_global_sim_stats().mode == "full"
        finally:
            set_incremental_simulation(True)
        assert cold.holds == warm.holds

    def test_explicit_checker_is_reused_across_rounds(self):
        topology, configs = _network("chain")
        checker = IncrementalGlobalChecker()
        check_global_no_transit(copy.deepcopy(configs), topology, checker=checker)
        assert checker.last_stats.mode == "full"
        check_global_no_transit(copy.deepcopy(configs), topology, checker=checker)
        assert checker.last_stats.incremental
