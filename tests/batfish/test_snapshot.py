"""Tests for snapshots and vendor detection."""

from repro.batfish import Snapshot, detect_vendor
from repro.netmodel import Vendor
from repro.sampleconfigs import BATFISH_EXAMPLE_CISCO

_JUNIPER = """\
system { host-name j1; }
routing-options { autonomous-system 100; }
protocols { bgp { group p { neighbor 2.3.4.5 { peer-as 200; } } } }
"""


class TestDetectVendor:
    def test_cisco(self):
        assert detect_vendor(BATFISH_EXAMPLE_CISCO) is Vendor.CISCO

    def test_juniper(self):
        assert detect_vendor(_JUNIPER) is Vendor.JUNIPER

    def test_small_cisco_snippet(self):
        assert detect_vendor("router bgp 1\n neighbor 1.0.0.2 remote-as 2\n") is (
            Vendor.CISCO
        )


class TestSnapshot:
    def test_from_texts_parses_both_vendors(self):
        snapshot = Snapshot.from_texts(
            {"c1.cfg": BATFISH_EXAMPLE_CISCO, "j1.cfg": _JUNIPER}
        )
        assert snapshot.configs["c1.cfg"].vendor is Vendor.CISCO
        assert snapshot.configs["j1.cfg"].vendor is Vendor.JUNIPER

    def test_hostname_defaults_to_filename(self):
        snapshot = Snapshot.from_texts({"r9.cfg": "router bgp 1\n"})
        assert snapshot.configs["r9.cfg"].hostname == "r9"

    def test_config_by_hostname(self):
        snapshot = Snapshot.from_texts({"x.cfg": BATFISH_EXAMPLE_CISCO})
        assert snapshot.config_by_hostname("as100border1") is not None
        assert snapshot.config_by_hostname("ghost") is None

    def test_warnings_collected_per_file(self):
        snapshot = Snapshot.from_texts({"bad.cfg": "exit\nrouter bgp 1\n"})
        assert snapshot.warnings["bad.cfg"]
        assert snapshot.all_warnings()

    def test_add_file_replaces(self):
        snapshot = Snapshot.from_texts({"r.cfg": "exit\n"})
        assert snapshot.all_warnings()
        snapshot.add_file("r.cfg", "router bgp 1\n")
        assert not snapshot.all_warnings()

    def test_write_and_reload(self, tmp_path):
        snapshot = Snapshot.from_texts({"c1.cfg": BATFISH_EXAMPLE_CISCO})
        directory = snapshot.write_to(tmp_path / "snap")
        reloaded = Snapshot.from_directory(directory)
        assert reloaded.hostnames() == snapshot.hostnames()

    def test_hostnames_sorted(self):
        snapshot = Snapshot.from_texts(
            {"b.cfg": "hostname bbb\n", "a.cfg": "hostname aaa\n"}
        )
        assert snapshot.hostnames() == ["aaa", "bbb"]
