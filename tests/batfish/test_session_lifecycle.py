"""Session lifecycle: snapshot re-initialization and simulation caching."""

from repro.batfish import Session


_A = (
    "hostname A\n"
    "interface eth0\n ip address 1.0.0.1 255.255.255.0\n"
    "router bgp 1\n"
    " network 10.1.0.0 mask 255.255.0.0\n"
    " neighbor 1.0.0.2 remote-as 2\n"
)
_B = (
    "hostname B\n"
    "interface eth0\n ip address 1.0.0.2 255.255.255.0\n"
    "router bgp 2\n"
    " neighbor 1.0.0.1 remote-as 1\n"
)


class TestSessionLifecycle:
    def test_simulation_is_cached(self):
        session = Session()
        session.init_snapshot_from_texts({"a.cfg": _A, "b.cfg": _B})
        assert session.simulation() is session.simulation()

    def test_reinit_resets_simulation(self):
        session = Session()
        session.init_snapshot_from_texts({"a.cfg": _A, "b.cfg": _B})
        first = session.simulation()
        session.init_snapshot_from_texts({"a.cfg": _A})
        assert session.simulation() is not first

    def test_reinit_replaces_snapshot(self):
        session = Session()
        session.init_snapshot_from_texts({"a.cfg": _A, "b.cfg": _B})
        session.init_snapshot_from_texts({"a.cfg": _A}, name="solo")
        assert session.snapshot.hostnames() == ["A"]
        assert session.snapshot.name == "solo"

    def test_config_of_accepts_filename(self):
        session = Session()
        session.init_snapshot_from_texts({"a.cfg": _A})
        assert session.config_of("A").hostname == "A"
        assert session.config_of("a.cfg").hostname == "A"

    def test_routes_after_reinit(self):
        session = Session()
        session.init_snapshot_from_texts({"a.cfg": _A, "b.cfg": _B})
        assert session.q.reachable("B", "10.1.0.0/16")
        session.init_snapshot_from_texts({"a.cfg": _A})
        assert not session.q.reachable("A", "99.0.0.0/8")
