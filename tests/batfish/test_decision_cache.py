"""Decision-cache property and differential tests.

The cached ``RibEntry.decision_key`` tuple must order entries exactly
as the historical attribute cascade does (property-tested over
randomized pairs), the ordering must be *total* on decision-relevant
attributes (the ``"" < ""`` local-origination tie regression), and the
cached/batched best-path selection must converge tie-heavy meshes —
every router originating the same prefix — to the same RIBs as the
legacy comparator, under full and incremental simulation alike.
"""

import random

import pytest

from repro.batfish.bgpsim import (
    BgpSimulation,
    RibEntry,
    SimulationState,
    _legacy_better,
    _same_entry,
    decision_cache_enabled,
    rib_snapshots,
    set_decision_cache,
)
from repro.cisco import parse_cisco
from repro.netmodel import Prefix
from repro.netmodel.aspath import AsPath
from repro.netmodel.route import Route, reset_route_stats, route_totals
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs


@pytest.fixture(autouse=True)
def _restore_cache():
    yield
    set_decision_cache(True)


PREFIX = Prefix.parse("10.0.0.0/16")

ROUTERS = ("R1", "R2", "R3", "R4")


def _random_entry(rng):
    """A RibEntry varying every decision-relevant attribute.

    Attributes outside the decision process (communities, next-hop) are
    held constant: the decision key is blind to them by design, so only
    decision-distinguishable pairs are meaningful for ordering.
    """
    learned_from = rng.choice((None,) + ROUTERS)
    route = Route(
        prefix=PREFIX,
        as_path=AsPath.of(tuple(rng.randint(1, 4) for _ in range(rng.randint(0, 3)))),
        med=rng.choice((0, 5, 10)),
        local_pref=rng.choice((50, 100, 200)),
    )
    origin = rng.choice(ROUTERS)
    return RibEntry(
        route=route,
        learned_from=learned_from,
        origin_router=origin,
        path=() if learned_from is None else (origin,),
    )


def _pairs(count=300, seed=7):
    rng = random.Random(seed)
    return [(_random_entry(rng), _random_entry(rng)) for _ in range(count)]


class TestDecisionOrder:
    def test_tuple_matches_legacy_comparator(self):
        """One tuple ``<`` must agree with the attribute cascade on
        every randomized pair, in both directions."""
        for a, b in _pairs():
            assert (a.decision_key < b.decision_key) == _legacy_better(a, b)
            assert (b.decision_key < a.decision_key) == _legacy_better(b, a)

    def test_better_antisymmetric_and_total(self):
        """For entries that differ in any decision-relevant attribute,
        exactly one direction wins — under either comparator."""
        for enabled in (True, False):
            set_decision_cache(enabled)
            for a, b in _pairs(seed=11):
                if a.decision_key == b.decision_key:
                    # Decision-indistinguishable: neither wins, and the
                    # cascade agrees with the tuple about the tie.
                    assert not BgpSimulation._better(a, b)
                    assert not BgpSimulation._better(b, a)
                else:
                    assert BgpSimulation._better(a, b) != BgpSimulation._better(b, a)

    def test_local_origination_tie_is_ordered(self):
        """Two locally originated entries with equal attributes must be
        strictly ordered by originator — the historical fall-through
        compared ``"" < ""`` and silently kept the incumbent."""
        a = RibEntry(route=Route(prefix=PREFIX), learned_from=None, origin_router="R1")
        b = RibEntry(route=Route(prefix=PREFIX), learned_from=None, origin_router="R2")
        for enabled in (True, False):
            set_decision_cache(enabled)
            assert BgpSimulation._better(a, b)
            assert not BgpSimulation._better(b, a)

    def test_same_entry_agrees_with_decision_key(self):
        """_same_entry must never call indistinguishable a pair whose
        decision keys differ."""
        for a, b in _pairs(seed=13):
            if _same_entry(a, b):
                assert a.decision_key == b.decision_key

    def test_toggle_roundtrip(self):
        assert decision_cache_enabled()
        set_decision_cache(False)
        assert not decision_cache_enabled()
        set_decision_cache(True)
        assert decision_cache_enabled()


def _tie_mesh(extra=None):
    """A 4-router full mesh where every router originates the *same*
    prefix: every (router, prefix) cell is a pure tie-break decision."""
    extra = extra or {}
    routers = ROUTERS
    texts = {}
    for i, name in enumerate(routers, start=1):
        lines = [f"hostname {name}"]
        eth = 0
        for j in range(1, len(routers) + 1):
            if j == i:
                continue
            low, high = sorted((i, j))
            lines.append(f"interface eth{eth}")
            lines.append(f" ip address 10.{low}.{high}.{i} 255.255.255.0")
            eth += 1
        lines.append(f"router bgp {i}")
        lines.append(" network 99.0.0.0 mask 255.255.0.0")
        for j in range(1, len(routers) + 1):
            if j == i:
                continue
            low, high = sorted((i, j))
            lines.append(f" neighbor 10.{low}.{high}.{j} remote-as {j}")
        lines.extend(extra.get(name, ()))
        texts[name] = "\n".join(lines) + "\n"
    return {
        name: parse_cisco(text, filename=name).config
        for name, text in texts.items()
    }


class TestTieHeavyMeshDifferential:
    def test_cache_on_off_identical_ribs(self):
        snapshots = {}
        for enabled in (True, False):
            set_decision_cache(enabled)
            sim = BgpSimulation(_tie_mesh())
            sim.run()
            snapshots[enabled] = rib_snapshots(sim)
        assert snapshots[True] == snapshots[False]
        # Every router resolves the contested prefix to the same winner.
        winner = {
            name: rib[Prefix.parse("99.0.0.0/16")]
            for name, rib in snapshots[True].items()
        }
        assert set(winner) == set(ROUTERS)

    def test_incremental_matches_full_on_ties(self):
        """Changing one router of an all-ties mesh must leave incremental
        re-simulation and a fresh full run on identical RIBs, with the
        decision cache on or off (the unified no-op install check keeps
        dirty tracking identical across all four paths)."""
        changed = {"R2": (" network 98.0.0.0 mask 255.255.0.0",)}
        snapshots = {}
        for enabled in (True, False):
            set_decision_cache(enabled)
            state = SimulationState(_tie_mesh())
            state.resimulate(_tie_mesh(changed), changed_routers=["R2"])
            assert state.last_stats.mode == "incremental"
            full = BgpSimulation(_tie_mesh(changed))
            full.run()
            snapshots[(enabled, "incremental")] = rib_snapshots(state._sim)
            snapshots[(enabled, "full")] = rib_snapshots(full)
        baseline = snapshots[(True, "full")]
        for key, snapshot in snapshots.items():
            assert snapshot == baseline, key


class TestReuseCounter:
    def test_mesh_converge_reuses_candidates(self):
        """A multi-round mesh fixpoint must count per-session candidate
        reuses — the counter that silently read 0 in every bench row."""
        configs = build_reference_configs(generate_network("mesh", 6).topology)
        reset_route_stats()
        sim = BgpSimulation(configs)
        sim.run()
        totals = route_totals()
        assert totals["routes_reused"] > 0
        assert totals["routes_built"] > 0
