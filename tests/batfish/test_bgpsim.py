"""Tests for the BGP control-plane simulator."""


from repro.batfish import BgpSimulation
from repro.cisco import generate_cisco, parse_cisco
from repro.netmodel import Community, Prefix


def _parse_all(texts):
    return {
        name: parse_cisco(text, filename=name).config
        for name, text in texts.items()
    }


def _two_routers(extra_a="", extra_b=""):
    a = (
        "hostname A\n"
        "interface eth0\n ip address 1.0.0.1 255.255.255.0\n"
        "router bgp 1\n"
        " network 10.1.0.0 mask 255.255.0.0\n"
        " neighbor 1.0.0.2 remote-as 2\n" + extra_a
    )
    b = (
        "hostname B\n"
        "interface eth0\n ip address 1.0.0.2 255.255.255.0\n"
        "router bgp 2\n"
        " network 10.2.0.0 mask 255.255.0.0\n"
        " neighbor 1.0.0.1 remote-as 1\n" + extra_b
    )
    return _parse_all({"A": a, "B": b})


class TestSessions:
    def test_mutual_declaration_establishes(self):
        sim = BgpSimulation(_two_routers())
        assert len(sim.sessions) == 1

    def test_wrong_remote_as_blocks_session(self):
        configs = _two_routers()
        configs["A"].bgp.neighbors["1.0.0.2"].remote_as = 99
        sim = BgpSimulation(configs)
        assert sim.sessions == []

    def test_one_sided_declaration_blocks_session(self):
        configs = _two_routers()
        configs["B"].bgp.remove_neighbor("1.0.0.1")
        sim = BgpSimulation(configs)
        assert sim.sessions == []

    def test_unowned_neighbor_address_ignored(self):
        configs = _two_routers()
        configs["A"].bgp.neighbors["1.0.0.2"].remote_as = 2
        # Add a neighbor address no router owns.
        from repro.netmodel import BgpNeighbor, Ipv4Address

        configs["A"].bgp.add_neighbor(
            BgpNeighbor(ip=Ipv4Address.parse("7.7.7.7"), remote_as=7)
        )
        sim = BgpSimulation(configs)
        assert len(sim.sessions) == 1


class TestPropagation:
    def test_routes_exchanged(self):
        sim = BgpSimulation(_two_routers())
        sim.run()
        assert sim.has_route("A", Prefix.parse("10.2.0.0/16"))
        assert sim.has_route("B", Prefix.parse("10.1.0.0/16"))

    def test_as_path_prepended(self):
        sim = BgpSimulation(_two_routers())
        entry = sim.rib("A")[Prefix.parse("10.2.0.0/16")]
        assert entry.route.as_path.asns == (2,)

    def test_provenance_tracked(self):
        sim = BgpSimulation(_two_routers())
        assert sim.provenance("A", Prefix.parse("10.2.0.0/16")) == "B"
        assert sim.provenance("A", Prefix.parse("10.1.0.0/16")) == "A"

    def test_local_origination_beats_learned(self):
        configs = _two_routers(
            extra_b=" network 10.1.0.0 mask 255.255.0.0\n"
        )
        sim = BgpSimulation(configs)
        assert sim.provenance("B", Prefix.parse("10.1.0.0/16")) == "B"

    def test_export_policy_applied(self):
        configs = _two_routers(
            extra_a=(
                " neighbor 1.0.0.2 route-map BLOCK out\n"
            )
        )
        # BLOCK denies everything (route-map with no permit clause).
        text = generate_cisco(configs["A"]) + "route-map BLOCK deny 10\n"
        configs["A"] = parse_cisco(text).config
        sim = BgpSimulation(configs)
        assert not sim.has_route("B", Prefix.parse("10.1.0.0/16"))

    def test_import_policy_transforms(self):
        configs = _two_routers(
            extra_b=" neighbor 1.0.0.1 route-map TAG in\n"
        )
        text = (
            generate_cisco(configs["B"])
            + "route-map TAG permit 10\n set community 100:1 additive\n"
        )
        configs["B"] = parse_cisco(text).config
        sim = BgpSimulation(configs)
        entry = sim.rib("B")[Prefix.parse("10.1.0.0/16")]
        assert Community(100, 1) in entry.route.communities

    def test_as_loop_prevention(self):
        """A route whose path contains the receiver's AS is rejected."""
        configs = _two_routers()
        # Three in a row: A - B, B - C, C - A would be needed for a real
        # loop; simulate by checking B never re-learns its own route.
        sim = BgpSimulation(configs)
        entry = sim.rib("B").get(Prefix.parse("10.2.0.0/16"))
        assert entry is not None
        assert entry.learned_from is None

    def test_convergence_is_idempotent(self):
        sim = BgpSimulation(_two_routers())
        first = sim.run()
        ribs = {name: sim.rib(name) for name in ("A", "B")}
        second = sim.run()
        assert first == second
        assert {name: sim.rib(name) for name in ("A", "B")} == ribs


class TestStarNoTransit:
    def test_reference_star_blocks_transit(self, star7_configs, star7):
        texts = {
            name: generate_cisco(cfg) for name, cfg in star7_configs.items()
        }
        configs = _parse_all(texts)
        sim = BgpSimulation(configs)
        sim.run()
        # R2's prefix must not reach R3 (tagged + filtered at R1 egress).
        assert not sim.has_route("R3", Prefix.parse("1.0.0.0/24"))
        # The customer prefix reaches every spoke.
        for name in ("R2", "R3", "R7"):
            assert sim.has_route(name, Prefix.parse("100.0.0.0/24"))
        # The hub hears every spoke prefix.
        assert sim.has_route("R1", Prefix.parse("1.0.0.0/24"))
        assert sim.has_route("R1", Prefix.parse("6.0.0.0/24"))

    def test_unfiltered_star_leaks_transit(self, star7_configs):
        texts = {
            name: generate_cisco(cfg) for name, cfg in star7_configs.items()
        }
        configs = _parse_all(texts)
        hub = configs["R1"]
        for neighbor in hub.bgp.neighbors.values():
            neighbor.export_policy = None
        sim = BgpSimulation(configs)
        assert sim.has_route("R3", Prefix.parse("1.0.0.0/24"))


class TestBestPath:
    def test_local_pref_wins(self):
        """Higher local-pref beats shorter AS path."""
        from repro.batfish.bgpsim import RibEntry
        from repro.netmodel import Route

        low = RibEntry(
            route=Route(prefix=Prefix.parse("9.0.0.0/8"), local_pref=100),
            learned_from="x",
            origin_router="x",
        )
        high = RibEntry(
            route=Route(
                prefix=Prefix.parse("9.0.0.0/8"), local_pref=200
            ).with_as_prepended(1).with_as_prepended(2),
            learned_from="y",
            origin_router="y",
        )
        assert BgpSimulation._better(high, low)
        assert not BgpSimulation._better(low, high)

    def test_shorter_as_path_wins(self):
        from repro.batfish.bgpsim import RibEntry
        from repro.netmodel import Route

        short = RibEntry(
            route=Route(prefix=Prefix.parse("9.0.0.0/8")).with_as_prepended(1),
            learned_from="x",
            origin_router="x",
        )
        long = RibEntry(
            route=Route(prefix=Prefix.parse("9.0.0.0/8"))
            .with_as_prepended(1)
            .with_as_prepended(2),
            learned_from="y",
            origin_router="y",
        )
        assert BgpSimulation._better(short, long)

    def test_lower_med_wins(self):
        from repro.batfish.bgpsim import RibEntry
        from repro.netmodel import Route

        cheap = RibEntry(
            route=Route(prefix=Prefix.parse("9.0.0.0/8"), med=10),
            learned_from="x",
            origin_router="x",
        )
        costly = RibEntry(
            route=Route(prefix=Prefix.parse("9.0.0.0/8"), med=20),
            learned_from="y",
            origin_router="y",
        )
        assert BgpSimulation._better(cheap, costly)
