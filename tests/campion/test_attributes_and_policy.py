"""Tests for attribute differences, policy differences, and the differ."""

import pytest

from repro.campion import (
    compare_configs,
    find_attribute_differences,
    find_policy_differences,
    find_redistribution_differences,
    junos_style_name,
    pair_interfaces,
)
from repro.juniper import translate_cisco_to_juniper
from repro.netmodel import Action
from repro.netmodel.routing_policy import MatchProtocol, SetMed
from repro.sampleconfigs import load_translation_source


@pytest.fixture()
def pair():
    source = load_translation_source()
    translated, _ = translate_cisco_to_juniper(load_translation_source())
    return source, translated


class TestCorrespondence:
    def test_junos_style_name(self):
        assert junos_style_name("Loopback0") == "lo0.0"
        assert junos_style_name("GigabitEthernet0/0") == "ge-0/0.0"

    def test_pair_by_address(self, pair):
        source, translated = pair
        translated.interfaces["lo0"] = translated.interfaces.pop("Loopback0")
        translated.interfaces["lo0"].name = "lo0"
        pairs, only_original, only_translated = pair_interfaces(
            source, translated
        )
        assert not only_original and not only_translated
        matched = {p.original.name: p.translated.name for p in pairs}
        assert matched["Loopback0"] == "lo0"

    def test_unmatched_reported(self, pair):
        source, translated = pair
        del translated.interfaces["Loopback0"]
        _, only_original, _ = pair_interfaces(source, translated)
        assert [i.name for i in only_original] == ["Loopback0"]


class TestAttributeDifferences:
    def test_clean_pair_has_none(self, pair):
        source, translated = pair
        assert find_attribute_differences(source, translated) == []

    def test_ospf_cost_difference_is_table1_example(self, pair):
        source, translated = pair
        translated.interfaces["Loopback0"].ospf_cost = None
        findings = find_attribute_differences(source, translated)
        (finding,) = findings
        text = finding.describe()
        assert "OSPF link" in text
        assert "cost set to 1" in text
        assert "cost set to 0" in text

    def test_passive_difference(self, pair):
        source, translated = pair
        translated.ospf.passive_interfaces.remove("Loopback0")
        findings = find_attribute_differences(source, translated)
        assert any("passive" in f.attribute for f in findings)

    def test_remote_as_difference(self, pair):
        source, translated = pair
        translated.bgp.neighbors["2.3.4.5"].remote_as = 999
        findings = find_attribute_differences(source, translated)
        assert any(f.attribute == "remote AS" for f in findings)

    def test_router_id_difference(self, pair):
        source, translated = pair
        from repro.netmodel import Ipv4Address

        translated.bgp.router_id = Ipv4Address.parse("9.9.9.9")
        findings = find_attribute_differences(source, translated)
        assert any(f.attribute == "router id" for f in findings)

    def test_interface_address_difference(self, pair):
        source, translated = pair
        from repro.netmodel import Ipv4Address

        translated.interfaces["GigabitEthernet0/0"].address = Ipv4Address.parse(
            "2.3.4.9"
        )
        findings = find_attribute_differences(source, translated)
        # Address mismatch breaks pairing-by-address but name matching
        # still pairs them, reporting the address difference.
        assert any(f.attribute == "ip address" for f in findings)


class TestPolicyDifferences:
    def test_clean_pair_has_none(self, pair):
        source, translated = pair
        assert find_policy_differences(source, translated) == []

    def test_med_difference_detected(self, pair):
        source, translated = pair
        for clause in translated.route_maps["to_provider"].clauses:
            clause.sets = [s for s in clause.sets if not isinstance(s, SetMed)]
        findings = find_policy_differences(source, translated)
        assert any("MED" in f.transform_detail for f in findings)

    def test_unguarded_export_reported_as_redistribution(self, pair):
        """Removing 'from protocol' guards makes the translation export
        connected routes the original never redistributed (§3.2)."""
        source, translated = pair
        for clause in translated.route_maps["to_provider"].clauses:
            clause.matches = [
                c for c in clause.matches if not isinstance(c, MatchProtocol)
            ]
        findings = find_redistribution_differences(source, translated)
        assert findings
        connected = [
            f for f in findings if "connected" in f.direction
        ]
        assert connected
        assert connected[0].original_action is Action.DENY
        assert connected[0].translated_action is Action.PERMIT

    def test_finding_describe_matches_table1_formula(self, pair):
        source, translated = pair
        translated.route_maps["to_provider"].clauses = []
        findings = find_policy_differences(source, translated)
        text = findings[0].describe()
        assert "performs the following action" in text
        assert "2.3.4.5" in text


class TestDiffer:
    def test_clean(self, pair):
        source, translated = pair
        report = compare_configs(source, translated)
        assert report.clean
        assert report.first_finding() is None

    def test_structure_masks_later_classes(self, pair):
        source, translated = pair
        translated.bgp.neighbors["2.3.4.5"].export_policy = None  # structural
        translated.interfaces["Loopback0"].ospf_cost = 5  # attribute
        report = compare_configs(source, translated)
        assert report.structural
        assert report.attributes == []  # masked

    def test_stop_at_first_class_disabled(self, pair):
        source, translated = pair
        translated.bgp.neighbors["2.3.4.5"].export_policy = None
        translated.interfaces["Loopback0"].ospf_cost = 5
        report = compare_configs(source, translated, stop_at_first_class=False)
        assert report.structural and report.attributes

    def test_summary(self, pair):
        source, translated = pair
        report = compare_configs(source, translated)
        assert "0 structural" in report.summary()
