"""Tests for structural mismatch detection."""


import pytest

from repro.campion import FindingSide, find_structural_mismatches
from repro.juniper import translate_cisco_to_juniper
from repro.sampleconfigs import load_translation_source


@pytest.fixture()
def pair():
    source = load_translation_source()
    translated, _ = translate_cisco_to_juniper(load_translation_source())
    return source, translated


class TestStructuralMismatches:
    def test_clean_pair_has_none(self, pair):
        source, translated = pair
        assert find_structural_mismatches(source, translated) == []

    def test_missing_neighbor(self, pair):
        source, translated = pair
        translated.bgp.remove_neighbor("2.3.4.5")
        findings = find_structural_mismatches(source, translated)
        assert any(
            f.component == "bgp neighbor"
            and f.name == "2.3.4.5"
            and f.present_in is FindingSide.ORIGINAL
            for f in findings
        )

    def test_extra_neighbor(self, pair):
        source, translated = pair
        from repro.netmodel import BgpNeighbor, Ipv4Address

        translated.bgp.add_neighbor(
            BgpNeighbor(ip=Ipv4Address.parse("9.9.9.9"), remote_as=9)
        )
        findings = find_structural_mismatches(source, translated)
        assert any(
            f.name == "9.9.9.9" and f.present_in is FindingSide.TRANSLATION
            for f in findings
        )

    def test_missing_export_policy_is_table1_example(self, pair):
        """Table 1's structural-mismatch example shape."""
        source, translated = pair
        translated.bgp.neighbors["2.3.4.5"].export_policy = None
        findings = find_structural_mismatches(source, translated)
        (finding,) = [
            f for f in findings if f.component == "export route map"
        ]
        text = finding.describe()
        assert "In the original configuration" in text
        assert "bgp neighbor 2.3.4.5" in text
        assert "no corresponding" in text

    def test_extra_import_policy(self, pair):
        source, translated = pair
        translated.bgp.neighbors["2.3.4.5"].import_policy = None
        findings = find_structural_mismatches(source, translated)
        assert any(f.component == "import route map" for f in findings)

    def test_missing_interface(self, pair):
        source, translated = pair
        del translated.interfaces["Loopback0"]
        findings = find_structural_mismatches(source, translated)
        assert any(
            f.component == "interface" and f.name == "Loopback0"
            for f in findings
        )

    def test_missing_ospf_process(self, pair):
        source, translated = pair
        translated.ospf = None
        findings = find_structural_mismatches(source, translated)
        assert any(f.component == "OSPF process" for f in findings)

    def test_missing_bgp_process(self, pair):
        source, translated = pair
        translated.bgp = None
        findings = find_structural_mismatches(source, translated)
        assert any(f.component == "BGP process" for f in findings)

    def test_dangling_policy_reference(self, pair):
        source, translated = pair
        del translated.route_maps["to_provider"]
        findings = find_structural_mismatches(source, translated)
        assert any("referenced" in f.component for f in findings)
