"""Scenario generation: determinism, serialization, combination covers."""

import json

from repro.fuzz.oracle import (
    ALL_NEW,
    FUZZ_FACTORS,
    LEGACY_BASELINE,
    all_combos,
    memo_partner,
    pairwise_combos,
)
from repro.fuzz.scenarios import FuzzScenario, scenario_at


class TestScenarioAt:
    def test_pure_function_of_seed_and_index(self):
        """The scenario sequence must be derivable in any process at
        any worker count: index i never depends on indices before it."""
        forward = [scenario_at(7, index) for index in range(20)]
        shuffled = [scenario_at(7, index) for index in reversed(range(20))]
        assert forward == list(reversed(shuffled))

    def test_seeds_give_distinct_sequences(self):
        a = [scenario_at(0, index).key() for index in range(10)]
        b = [scenario_at(1, index).key() for index in range(10)]
        assert a != b

    def test_generated_scenarios_are_valid_coordinates(self):
        """Every generated scenario names a real family with a size its
        pools allow, and at least one edit."""
        from repro.topology.families import FAMILIES

        for index in range(30):
            scenario = scenario_at(0, index)
            assert scenario.family in FAMILIES
            assert 3 <= scenario.size <= 10
            assert 1 <= len(scenario.edits) <= 4

    def test_serialization_roundtrip_is_byte_identical(self):
        for index in range(10):
            scenario = scenario_at(3, index)
            rebuilt = FuzzScenario.from_dict(json.loads(scenario.to_json()))
            assert rebuilt == scenario
            assert rebuilt.to_json() == scenario.to_json()


class TestCombos:
    def test_all_combos_is_the_full_matrix(self):
        combos = all_combos()
        assert len(combos) == 2 ** len(FUZZ_FACTORS) == 32
        assert len({json.dumps(c, sort_keys=True) for c in combos}) == 32
        assert LEGACY_BASELINE in combos
        assert ALL_NEW in combos

    def test_pairwise_covers_every_factor_value_pair(self):
        import itertools

        chosen = pairwise_combos()
        assert LEGACY_BASELINE in chosen
        assert ALL_NEW in chosen
        assert len(chosen) < 32  # it must actually be a subset
        names = [name for name, _values in FUZZ_FACTORS]
        values = dict(FUZZ_FACTORS)
        covered = {
            (a, combo[a], b, combo[b])
            for combo in chosen
            for a, b in itertools.combinations(names, 2)
        }
        for a, b in itertools.combinations(names, 2):
            for va in values[a]:
                for vb in values[b]:
                    assert (a, va, b, vb) in covered, (a, va, b, vb)

    def test_memo_partner_is_the_v1_twin(self):
        assert memo_partner(ALL_NEW) == {**ALL_NEW, "route_model": "v1"}
        assert memo_partner(LEGACY_BASELINE) is None
        assert memo_partner({**ALL_NEW, "memoization": False}) is None
        assert memo_partner({**ALL_NEW, "route_model": "v1"}) is None
