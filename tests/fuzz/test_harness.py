"""The fuzz loop end to end: clean runs, the planted-bug self-test,
shrinking, journaling, and worker-count determinism.

The planted-bug tests are the harness's acceptance contract: a fuzzer
is only trustworthy if, handed a known historical bug (the legacy
comparator's arrival-order tie fall-through, re-enabled behind the
hidden ``legacy-tiebreak`` flag), it finds the divergence, shrinks it,
and emits a corpus record that fails while the bug is planted and
passes the moment it is fixed.
"""

import json

import pytest

from repro.batfish.bgpsim import _plant_bug, _planted_bugs
from repro.core import toggles
from repro.fuzz.corpus import replay_record, repro_filename
from repro.fuzz.harness import (
    FuzzConfig,
    fold_fuzz_journal,
    run_fuzz,
    run_fuzz_iteration,
)

# The first planted-bug hit in seed 55's scenario sequence sits at
# index 1, so two iterations exercise a clean index and a finding one.
PLANTED_SEED = 55
PLANTED_ITERATIONS = 2


class TestRunFuzzIteration:
    def test_clean_iteration_is_ok(self):
        result = run_fuzz_iteration(0, 0, pairs=True)
        assert result.ok
        assert result.repro is None
        assert result.error is None

    def test_unknown_planted_bug_is_rejected(self):
        with pytest.raises(ValueError, match="unknown planted bug"):
            run_fuzz_iteration(0, 0, pairs=True, planted=("no-such-bug",))

    def test_planted_state_is_restored_even_after_a_find(self):
        result = run_fuzz_iteration(
            PLANTED_SEED, 1, pairs=True, planted=("legacy-tiebreak",)
        )
        assert not result.ok
        assert _planted_bugs() == frozenset()
        assert toggles.deviations() == []


class TestPlantedBugContract:
    @pytest.fixture(scope="class")
    def finding(self):
        return run_fuzz_iteration(
            PLANTED_SEED, 1, pairs=True, planted=("legacy-tiebreak",)
        )

    def test_planted_bug_is_found(self, finding):
        assert not finding.ok
        assert finding.check == "semantic"
        assert finding.repro is not None
        assert finding.mismatch and "diverged" in finding.mismatch

    def test_shrinker_minimized_the_scenario(self, finding):
        """The generated scenario at (55, 1) carries several edits; the
        planted tie bug needs none of them, so the shrunk repro must be
        strictly smaller than the original."""
        from repro.fuzz.scenarios import scenario_at

        original = scenario_at(PLANTED_SEED, 1)
        assert original.edits  # there was something to shrink away
        shrunk = finding.repro["scenario"]
        assert shrunk["edits"] == []
        assert shrunk["roles"] == "default"
        assert shrunk["topo"] == "default"
        assert shrunk["place"] == "default"
        assert shrunk["topology_seed"] == 0

    def test_corpus_record_fails_planted_and_passes_fixed(self, finding):
        """The acceptance criterion: the emitted corpus file fails
        before the fix (bug planted) and passes after (bug unplanted —
        the shipped comparator carries the total tie-break)."""
        record = finding.repro
        _plant_bug("legacy-tiebreak", True)
        try:
            assert replay_record(record) is not None
        finally:
            _plant_bug("legacy-tiebreak", False)
        assert replay_record(record) is None

    def test_repro_filename_is_content_addressed(self, finding):
        name = repro_filename(finding.repro)
        assert name.startswith("fuzz-")
        assert name.endswith(".json")
        assert repro_filename(finding.repro) == name


class TestRunFuzz:
    def test_requires_iterations_or_budget(self, tmp_path):
        with pytest.raises(ValueError, match="iterations or budget"):
            run_fuzz(FuzzConfig(corpus_dir=tmp_path / "corpus"))

    def test_journal_resume_skips_completed_indices(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        corpus = tmp_path / "corpus"
        config = FuzzConfig(
            fuzz_seed=0, iterations=2, pairs=True, corpus_dir=corpus
        )
        first = run_fuzz(config, journal_path=journal, resume=False)
        assert len(first.results) == 2
        lines_before = journal.read_text().count("\n")
        resumed = run_fuzz(
            FuzzConfig(
                fuzz_seed=0, iterations=3, pairs=True, corpus_dir=corpus
            ),
            journal_path=journal,
            resume=True,
        )
        assert len(resumed.results) == 3
        assert resumed.resumed == 2
        # Only index 2 was journaled by the resumed run.
        assert journal.read_text().count("\n") == lines_before + 1
        folded = fold_fuzz_journal(journal)
        assert sorted(folded) == [0, 1, 2]

    def test_worker_count_never_changes_the_outcome(self, tmp_path):
        """Same --fuzz-seed ⇒ identical folded results and identical
        shrunk repro bytes at 1 and 4 workers (scenario derivation is a
        pure function of (seed, index) and corpus files are content-
        addressed and written by the parent only)."""
        outcomes = {}
        for workers in (1, 4):
            journal = tmp_path / f"fuzz-{workers}.jsonl"
            corpus = tmp_path / f"corpus-{workers}"
            summary = run_fuzz(
                FuzzConfig(
                    fuzz_seed=PLANTED_SEED,
                    iterations=PLANTED_ITERATIONS,
                    pairs=True,
                    workers=workers,
                    corpus_dir=corpus,
                    planted=("legacy-tiebreak",),
                ),
                journal_path=journal,
                resume=False,
            )
            folded = fold_fuzz_journal(journal)
            outcomes[workers] = (
                {index: result for index, result in folded.items()},
                {
                    path.name: path.read_bytes()
                    for path in sorted(corpus.glob("*.json"))
                },
                [written.name for written in summary.corpus_written],
            )
        assert outcomes[1] == outcomes[4]
        _folded, corpus_bytes, _written = outcomes[1]
        assert corpus_bytes  # the planted bug produced a repro
