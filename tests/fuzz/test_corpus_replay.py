"""Replay every checked-in fuzz corpus file as a differential test.

Each file under ``tests/fuzz_corpus/`` is a minimal scenario the fuzzer
once shrank from a real divergence.  Replaying re-runs the comparison
from scratch under the recorded toggle combinations, so a fixed bug
that regresses makes its corpus file fail here — forever, under tier 1.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import corpus_files, load_repro, replay_record
from repro.fuzz.harness import lint_scenario
from repro.fuzz.scenarios import FuzzScenario

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"

FILES = corpus_files(CORPUS_DIR)


def test_corpus_is_not_empty():
    """At least one shrunk repro is checked in (the tie-break bugs this
    harness was born finding)."""
    assert FILES


@pytest.mark.parametrize(
    "path", FILES, ids=[path.name for path in FILES]
)
def test_corpus_file_replays_green(path):
    record = load_repro(path)
    mismatch = replay_record(record)
    assert mismatch is None, (
        f"{path.name} diverges again — the bug it captured is back "
        f"(or a new one landed on the same scenario): {mismatch}"
    )


@pytest.mark.parametrize(
    "path", FILES, ids=[path.name for path in FILES]
)
def test_corpus_file_is_well_formed(path):
    record = load_repro(path)
    assert record["kind"] == "fuzz_repro"
    assert record["check"] in ("semantic", "memo")
    assert record["mismatch"]  # what the fuzzer saw at capture time
    assert set(record["combo"]) == set(record["baseline"])


@pytest.mark.parametrize(
    "path", FILES, ids=[path.name for path in FILES]
)
def test_corpus_file_lint_is_deterministic(path):
    """Corpus hygiene: replaying a corpus entry also runs the static
    analyzer over the scenario's final edited configs, and two
    independent runs must produce the identical finding set — ordering,
    serialization, and rendered text alike.  A rule whose output
    depends on dict iteration order or cached state fails here."""
    scenario = FuzzScenario.from_dict(load_repro(path)["scenario"])
    first = lint_scenario(scenario)
    second = lint_scenario(scenario)
    assert first.to_dict() == second.to_dict()
    assert first.render_text() == second.render_text()
    assert [f.sort_key() for f in first] == [f.sort_key() for f in second]
