"""End-to-end integration tests across the whole pipeline."""


import pytest

from repro.core import (
    DEFAULT_IIP_IDS,
    LoopLimits,
    ScriptedHuman,
    SynthesisOrchestrator,
    TranslationOrchestrator,
)
from repro.experiments import (
    run_no_transit_experiment,
    run_translation_experiment,
)
from repro.juniper import parse_juniper
from repro.campion import compare_configs
from repro.llm import (
    BehaviorProfile,
    make_synthesis_models,
    make_translation_model,
    translation_fault_catalog,
)
from repro.sampleconfigs import load_translation_source


class TestTranslationEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_final_config_is_verified_equivalent(self, seed):
        """Whatever path the loop takes, the end state must be a Juniper
        config that parses clean and is Campion-equivalent."""
        experiment = run_translation_experiment(seed=seed)
        assert experiment.result.verified
        parsed = parse_juniper(experiment.result.final_text)
        assert not parsed.warnings
        report = compare_configs(
            load_translation_source(), parsed.config, stop_at_first_class=False
        )
        assert report.clean

    def test_figure3_back_edges_occur(self):
        """Some seed in a small sweep must show the semantic-fix-breaks-
        syntax back-edge the paper describes."""
        edges = [
            run_translation_experiment(seed=seed).result.transcript.back_edges()
            for seed in range(5)
        ]
        assert any(edge > 0 for edge in edges)

    def test_idealized_model_needs_no_human_for_fixable_faults(self):
        model = make_translation_model(
            seed=0,
            profile=BehaviorProfile.always_fix(),
            initial_faults=(
                "missing_local_as",
                "missing_export_policy",
                "ospf_cost_difference",
                "wrong_med",
            ),
        )
        orchestrator = TranslationOrchestrator(
            load_translation_source(),
            model,
            human=ScriptedHuman(translation_fault_catalog()),
        )
        result = orchestrator.run()
        assert result.verified
        assert result.prompt_log.human == 0
        assert result.prompt_log.automated == 4


class TestSynthesisEndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_star7_verified_across_seeds(self, seed):
        experiment = run_no_transit_experiment(seed=seed)
        assert experiment.result.verified
        assert experiment.result.global_check.holds

    def test_budget_exhaustion_reported_not_raised(self, star7):
        models = make_synthesis_models(
            star7.topology,
            iip_ids=DEFAULT_IIP_IDS,
            seed=0,
            profile=BehaviorProfile.never_fix(),
        )
        orchestrator = SynthesisOrchestrator(
            star7.topology,
            models,
            human=None,
            limits=LoopLimits(attempts_per_finding=1, max_correction_prompts=5),
            iip_ids=DEFAULT_IIP_IDS,
        )
        result = orchestrator.run()
        assert not result.verified

    def test_composed_snapshot_satisfies_lightyear_composition(self, star7):
        from repro.cisco import parse_cisco
        from repro.lightyear import check_composition, no_transit_invariants

        experiment = run_no_transit_experiment(seed=0)
        configs = {
            name: parse_cisco(text).config
            for name, text in experiment.result.router_texts.items()
        }
        invariants = no_transit_invariants(star7.topology)
        composition = check_composition(invariants, configs, star7.topology)
        assert composition.holds


class TestFailureInjection:
    def test_loop_survives_model_returning_garbage(self):
        class GarbageModel:
            def send(self, prompt):
                return "%%% not a config %%%"

        orchestrator = TranslationOrchestrator(
            load_translation_source(),
            GarbageModel(),
            human=None,
            limits=LoopLimits(max_correction_prompts=3),
        )
        result = orchestrator.run()
        assert not result.verified

    def test_loop_survives_empty_response(self):
        class EmptyModel:
            def send(self, prompt):
                return ""

        orchestrator = TranslationOrchestrator(
            load_translation_source(),
            EmptyModel(),
            human=None,
            limits=LoopLimits(max_correction_prompts=3),
        )
        result = orchestrator.run()
        assert not result.verified
