"""Differential property tests: route model v1 == route model v2.

The transactional builder datapath must be observationally identical to
the historical per-attribute copies on every topology family the repo
can generate — RIBs (attribute for attribute, provenance included),
local-invariant verdicts, global no-transit verdicts with per-role
breakdowns, and even the symbolic memo traffic (canonical keys mean the
hit/miss pattern cannot depend on the datapath).
"""

import copy

import pytest

from repro.batfish.bgpsim import (
    BgpSimulation,
    rib_snapshots,
    set_decision_cache,
)
from repro.lightyear import (
    check_composition,
    check_global_no_transit,
    no_transit_invariants,
    verify_invariants,
)
from repro.lightyear.compose import reset_simulation_states
from repro.netmodel.route import set_route_model
from repro.symbolic.memo import cache_totals, reset_caches
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

# All seven families; the seeded ones also in roled/multi-homed and
# degree-placed variants.
CELLS = [
    ("star", 7, {}),
    ("chain", 6, {}),
    ("ring", 6, {}),
    ("mesh", 6, {}),
    ("dumbbell", 6, {}),
    ("random", 8, {"seed": 1, "roles": "c2i2h2"}),
    ("random", 8, {"seed": 2, "roles": "c2i2h1", "place": "degree"}),
    ("waxman", 8, {"seed": 1, "roles": "c2i2h2"}),
    ("waxman", 8, {"seed": 3, "roles": "c1i3h1p1", "place": "degree"}),
]

IDS = [
    f"{family}-{size}" + "".join(f"-{v}" for v in extra.values())
    for family, size, extra in CELLS
]


@pytest.fixture(autouse=True)
def _restore_v2():
    yield
    set_route_model("v2")
    set_decision_cache(True)


def _configs(family, size, extra):
    return build_reference_configs(
        generate_network(family, size, **extra).topology
    )


@pytest.mark.parametrize("family,size,extra", CELLS, ids=IDS)
class TestDifferential:
    def test_ribs_identical(self, family, size, extra):
        configs = _configs(family, size, extra)
        snapshots = {}
        evaluations = {}
        for model in ("v1", "v2"):
            set_route_model(model)
            sim = BgpSimulation(copy.deepcopy(configs))
            sim.run()
            snapshots[model] = rib_snapshots(sim)
            evaluations[model] = sim.evaluations
        assert snapshots["v1"] == snapshots["v2"]
        assert evaluations["v1"] == evaluations["v2"]

    def test_decision_cache_identical_ribs(self, family, size, extra):
        """Cached decision tuples + batched best-path selection converge
        to the same RIBs as the legacy attribute-cascade comparator, on
        every family."""
        configs = _configs(family, size, extra)
        snapshots = {}
        for enabled in (True, False):
            set_decision_cache(enabled)
            sim = BgpSimulation(copy.deepcopy(configs))
            sim.run()
            snapshots[enabled] = rib_snapshots(sim)
        assert snapshots[True] == snapshots[False]

    def test_verdicts_identical(self, family, size, extra):
        topology = generate_network(family, size, **extra).topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        outcomes = {}
        for model in ("v1", "v2"):
            set_route_model(model)
            reset_caches()
            reset_simulation_states()
            violations = verify_invariants(copy.deepcopy(configs), invariants)
            composition = check_composition(
                invariants, copy.deepcopy(configs), topology
            )
            check = check_global_no_transit(copy.deepcopy(configs), topology)
            outcomes[model] = (
                [violation.message for violation in violations],
                composition.holds,
                check.holds,
                dict(check.role_verdicts),
            )
        assert outcomes["v1"] == outcomes["v2"]

    def test_memo_traffic_identical(self, family, size, extra):
        """Canonical (interned) memo keys mean the cache hit/miss
        pattern of a verification pass is datapath-independent."""
        topology = generate_network(family, size, **extra).topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        traffic = {}
        for model in ("v1", "v2"):
            set_route_model(model)
            reset_caches()
            verify_invariants(copy.deepcopy(configs), invariants)
            verify_invariants(copy.deepcopy(configs), invariants)
            traffic[model] = cache_totals()
        assert traffic["v1"] == traffic["v2"]
        hits, _misses = traffic["v2"]
        assert hits > 0  # the repeat pass must actually hit the memo


class TestWitnessStability:
    """A violation witness must be the same route under either model."""

    def test_witness_routes_identical(self):
        from repro.llm import synthesis_fault_catalog
        from repro.llm.faults import DraftState

        topology = generate_network("mesh", 6).topology
        configs = build_reference_configs(topology)
        catalog = synthesis_fault_catalog(topology)
        state = DraftState(configs["R4"], lambda config: "")
        state.inject(catalog["egress_permits_tagged"])
        faulted = dict(configs)
        faulted["R4"] = state.current_config()
        invariants = no_transit_invariants(topology)
        witnesses = {}
        for model in ("v1", "v2"):
            set_route_model(model)
            reset_caches()
            violations = verify_invariants(copy.deepcopy(faulted), invariants)
            assert violations, "the injected fault must be caught"
            witnesses[model] = [
                (violation.router, violation.witness) for violation in violations
            ]
        assert witnesses["v1"] == witnesses["v2"]
