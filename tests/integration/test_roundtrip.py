"""Round-trip regression: parse ∘ generate is a fixed point.

For every bundled sample config (and the generated reference configs),
rendering the parsed IR back to text and re-parsing it must be stable:
``generate(parse(generate(parse(text)))) == generate(parse(text))``.
This pins the parser/generator pair against silent drift — a config
must not change meaning (or shape) just by passing through the tools.
"""

import pytest

from repro.cisco import generate_cisco, parse_cisco
from repro.juniper import generate_juniper, parse_juniper, translate_cisco_to_juniper
from repro.sampleconfigs import (
    BATFISH_EXAMPLE_CISCO,
    BATFISH_EXAMPLE_CISCO_2,
    load_second_source,
    load_translation_source,
)
from repro.topology import generate_network, generate_star_network
from repro.topology.reference import build_reference_configs

CISCO_SAMPLES = {
    "batfish_example": BATFISH_EXAMPLE_CISCO,
    "batfish_example_2": BATFISH_EXAMPLE_CISCO_2,
}


def _cisco_canonical(text):
    result = parse_cisco(text, filename="roundtrip.cfg")
    assert not result.warnings, [w.render() for w in result.warnings]
    return generate_cisco(result.config)


def _juniper_canonical(text):
    result = parse_juniper(text, filename="roundtrip.conf")
    assert not result.warnings, [w.render() for w in result.warnings]
    return generate_juniper(result.config)


class TestCiscoRoundTrip:
    @pytest.mark.parametrize("name", sorted(CISCO_SAMPLES))
    def test_bundled_samples_are_fixed_points(self, name):
        canonical = _cisco_canonical(CISCO_SAMPLES[name])
        assert _cisco_canonical(canonical) == canonical

    def test_star_reference_configs_are_fixed_points(self):
        topology = generate_star_network(7).topology
        for config in build_reference_configs(topology).values():
            canonical = generate_cisco(config)
            assert _cisco_canonical(canonical) == canonical

    @pytest.mark.parametrize(
        "family", ["chain", "ring", "mesh", "dumbbell"]
    )
    def test_family_reference_configs_are_fixed_points(self, family):
        topology = generate_network(family, 5).topology
        for config in build_reference_configs(topology).values():
            canonical = generate_cisco(config)
            assert _cisco_canonical(canonical) == canonical


class TestJuniperRoundTrip:
    @pytest.mark.parametrize(
        "loader", [load_translation_source, load_second_source]
    )
    def test_translated_samples_are_fixed_points(self, loader):
        translated, _ = translate_cisco_to_juniper(loader())
        canonical = generate_juniper(translated)
        assert _juniper_canonical(canonical) == canonical
