"""Property-based tests over randomly generated configurations.

These exercise cross-module invariants: generator/parser round-trips on
both vendors, route-map evaluation laws, and BGP-simulation safety
properties — the kind of bugs unit tests with hand-picked configs miss.
"""

from hypothesis import given, settings, strategies as st

from repro.cisco import generate_cisco, parse_cisco
from repro.juniper import generate_juniper, parse_juniper
from repro.netmodel import (
    Action,
    BgpNeighbor,
    Community,
    CommunityList,
    CommunityListEntry,
    Interface,
    Ipv4Address,
    MatchCommunityList,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixRange,
    Route,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    SetCommunity,
    SetLocalPref,
    SetMed,
    Vendor,
)

# -- strategies -----------------------------------------------------------------

asns = st.integers(min_value=1, max_value=65000)
med_values = st.integers(min_value=0, max_value=4_000_000)
communities = st.builds(
    Community,
    st.integers(min_value=1, max_value=65000),
    st.integers(min_value=0, max_value=65000),
)


@st.composite
def prefixes24(draw):
    """Prefixes with octet-aligned lengths render cleanly on both vendors."""
    length = draw(st.sampled_from([8, 16, 24, 32]))
    network = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    return Prefix(network, length)


@st.composite
def route_maps(draw, prefix_list_names, community_list_names):
    name = draw(st.sampled_from(["MAP_A", "MAP_B", "MAP_C"]))
    route_map = RouteMap(name)
    clause_count = draw(st.integers(min_value=1, max_value=3))
    for index in range(clause_count):
        clause = RouteMapClause(
            seq=(index + 1) * 10,
            action=draw(st.sampled_from([Action.PERMIT, Action.DENY])),
        )
        if draw(st.booleans()) and prefix_list_names:
            clause.matches.append(
                MatchPrefixList(draw(st.sampled_from(prefix_list_names)))
            )
        if draw(st.booleans()) and community_list_names:
            clause.matches.append(
                MatchCommunityList(draw(st.sampled_from(community_list_names)))
            )
        if clause.action is Action.PERMIT:
            if draw(st.booleans()):
                clause.sets.append(SetMed(draw(med_values)))
            if draw(st.booleans()):
                clause.sets.append(
                    SetCommunity((draw(communities),), additive=True)
                )
            if draw(st.booleans()):
                clause.sets.append(SetLocalPref(draw(st.integers(0, 500))))
        route_map.add_clause(clause)
    return route_map


@st.composite
def router_configs(draw):
    config = RouterConfig(hostname="fuzz", vendor=Vendor.CISCO)
    config.add_interface(
        Interface.with_address("eth0/0", f"10.0.{draw(st.integers(0, 254))}.1/24")
    )
    plist = PrefixList("PL_X")
    for _ in range(draw(st.integers(1, 3))):
        base = draw(prefixes24())
        low = draw(st.integers(min_value=base.length, max_value=32))
        high = draw(st.integers(min_value=low, max_value=32))
        plist.add(
            draw(st.sampled_from(["permit", "deny"])),
            PrefixRange(base, low, high),
        )
    config.add_prefix_list(plist)
    clist = CommunityList("7")
    clist.add(CommunityListEntry("permit", (draw(communities),)))
    config.add_community_list(clist)
    route_map = draw(route_maps(["PL_X"], ["7"]))
    config.add_route_map(route_map)
    bgp = config.ensure_bgp(draw(asns))
    bgp.announce(Prefix.parse(f"10.0.{draw(st.integers(0, 254))}.0/24"))
    neighbor = BgpNeighbor(
        ip=Ipv4Address.parse("10.0.255.2"),
        remote_as=draw(asns),
        send_community=True,
    )
    if draw(st.booleans()):
        neighbor.export_policy = route_map.name
    bgp.add_neighbor(neighbor)
    return config


@st.composite
def candidate_routes(draw):
    return Route(
        prefix=draw(prefixes24()),
        communities=frozenset(draw(st.lists(communities, max_size=2))),
        med=draw(med_values),
    )


# -- round trips --------------------------------------------------------------------


class TestCiscoRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(router_configs())
    def test_generate_parse_preserves_structure(self, config):
        result = parse_cisco(generate_cisco(config))
        assert not result.warnings
        rebuilt = result.config
        assert rebuilt.hostname == config.hostname
        assert set(rebuilt.route_maps) == set(config.route_maps)
        assert set(rebuilt.prefix_lists) == set(config.prefix_lists)
        assert rebuilt.bgp.asn == config.bgp.asn
        assert set(rebuilt.bgp.neighbors) == set(config.bgp.neighbors)
        assert rebuilt.bgp.networks == config.bgp.networks

    @settings(max_examples=40, deadline=None)
    @given(router_configs(), candidate_routes())
    def test_roundtrip_preserves_policy_semantics(self, config, route):
        """Round-tripped policies must evaluate identically."""
        rebuilt = parse_cisco(generate_cisco(config)).config
        for name, original_map in config.route_maps.items():
            rebuilt_map = rebuilt.route_maps[name]
            before = original_map.evaluate(route, config)
            after = rebuilt_map.evaluate(route, rebuilt)
            assert before.action is after.action
            if before.permitted:
                assert before.route == after.route


class TestJuniperRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(router_configs(), candidate_routes())
    def test_juniper_render_parse_preserves_policy_semantics(
        self, config, route
    ):
        from repro.juniper import translate_cisco_to_juniper

        juniper, _ = translate_cisco_to_juniper(config)
        result = parse_juniper(generate_juniper(juniper))
        assert not result.warnings
        rebuilt = result.config
        for name, translated_map in juniper.route_maps.items():
            rebuilt_map = rebuilt.route_maps[name]
            before = translated_map.evaluate(route, juniper)
            after = rebuilt_map.evaluate(route, rebuilt)
            assert before.action is after.action, name
            if before.permitted:
                assert before.route == after.route, name


# -- evaluation laws ----------------------------------------------------------------


class TestEvaluationLaws:
    @settings(max_examples=60, deadline=None)
    @given(router_configs(), candidate_routes())
    def test_deny_never_transforms(self, config, route):
        for route_map in config.route_maps.values():
            result = route_map.evaluate(route, config)
            if not result.permitted:
                assert result.route == route

    @settings(max_examples=60, deadline=None)
    @given(router_configs(), candidate_routes())
    def test_additive_sets_only_grow_communities(self, config, route):
        for route_map in config.route_maps.values():
            result = route_map.evaluate(route, config)
            if result.permitted:
                fired = route_map.get_clause(result.clause_seq)
                if all(
                    getattr(action, "additive", True)
                    for action in fired.sets
                    if isinstance(action, SetCommunity)
                ):
                    assert route.communities <= result.route.communities

    @settings(max_examples=60, deadline=None)
    @given(router_configs(), candidate_routes())
    def test_evaluation_is_deterministic(self, config, route):
        for route_map in config.route_maps.values():
            first = route_map.evaluate(route, config)
            second = route_map.evaluate(route, config)
            assert first == second


# -- simulation safety -----------------------------------------------------------------


class TestSimulationSafety:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_no_learned_route_contains_own_asn(self, seed_value):
        """AS-loop prevention holds on the reference star regardless of
        which spoke's prefix we look at."""
        from repro.batfish import BgpSimulation
        from repro.topology import generate_star_network
        from repro.topology.reference import build_reference_configs

        star = generate_star_network(4 + (seed_value % 4))
        configs = build_reference_configs(star.topology)
        simulation = BgpSimulation(configs)
        simulation.run()
        for name, config in configs.items():
            for entry in simulation.rib(name).values():
                if entry.learned_from is not None:
                    assert not entry.route.as_path.contains(config.bgp.asn)
