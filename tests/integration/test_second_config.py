"""End-to-end coverage of the second bundled config.

Exercises the features the primary config does not: standard ACLs as
route filters, AS-path access lists, local preference, and AS-path
prepending — all through the full parse → translate → render → reparse →
Campion pipeline.
"""


from repro.campion import compare_configs
from repro.cisco import generate_cisco, parse_cisco
from repro.juniper import generate_juniper, parse_juniper, translate_cisco_to_juniper
from repro.netmodel import Prefix, Route, path_through
from repro.sampleconfigs import load_second_source


class TestSecondSource:
    def test_parses_clean(self):
        config = load_second_source()
        assert config.hostname == "as200edge1"

    def test_features_present(self):
        config = load_second_source()
        assert "20" in config.access_lists
        assert "1" in config.as_path_lists
        assert "from_peer" in config.route_maps

    def test_cisco_roundtrip(self):
        config = load_second_source()
        result = parse_cisco(generate_cisco(config))
        assert not result.warnings
        assert set(result.config.route_maps) == set(config.route_maps)

    def test_reference_translation_is_campion_clean(self):
        source = load_second_source()
        juniper, _ = translate_cisco_to_juniper(load_second_source())
        rendered = generate_juniper(juniper)
        reparsed = parse_juniper(rendered)
        assert not reparsed.warnings
        report = compare_configs(
            source, reparsed.config, stop_at_first_class=False
        )
        assert report.clean, report.summary()

    def test_as_path_policy_survives_roundtrip(self):
        """from_peer permits only routes whose path starts at AS 400."""
        juniper, _ = translate_cisco_to_juniper(load_second_source())
        rebuilt = parse_juniper(generate_juniper(juniper)).config
        from_peer = rebuilt.route_maps["from_peer"]
        matching = Route(
            prefix=Prefix.parse("40.0.0.0/8"), as_path=path_through([400])
        )
        other = Route(
            prefix=Prefix.parse("40.0.0.0/8"), as_path=path_through([500])
        )
        assert from_peer.evaluate(matching, rebuilt).permitted
        assert from_peer.evaluate(matching, rebuilt).route.local_pref == 200
        assert not from_peer.evaluate(other, rebuilt).permitted

    def test_acl_export_policy_survives_roundtrip(self):
        juniper, _ = translate_cisco_to_juniper(load_second_source())
        rebuilt = parse_juniper(generate_juniper(juniper)).config
        to_upstream = rebuilt.route_maps["to_upstream"]
        inside = Route(prefix=Prefix.parse("20.1.0.0/16"))
        result = to_upstream.evaluate(inside, rebuilt)
        assert result.permitted
        assert result.route.as_path.asns == (200, 200)

    def test_export_policy_guarded_against_igp_leak(self):
        """The always-guard rule: the translated export policy must not
        export OSPF/connected routes the Cisco config never redistributed."""
        from repro.netmodel import Protocol

        juniper, notes = translate_cisco_to_juniper(load_second_source())
        assert "to_upstream" in notes.guarded_export_policies
        rebuilt = parse_juniper(generate_juniper(juniper)).config
        to_upstream = rebuilt.route_maps["to_upstream"]
        igp_route = Route(
            prefix=Prefix.parse("20.1.0.0/16"), protocol=Protocol.CONNECTED
        )
        assert not to_upstream.evaluate(igp_route, rebuilt).permitted

    def test_shorter_aligned_prefixes_match_acl_cone(self):
        """The ACL exactness fix: 20.0.0.0/6 and /7 canonicalize to the
        ACL's base address and must stay matched after translation."""
        source = load_second_source()
        juniper, _ = translate_cisco_to_juniper(load_second_source())
        rebuilt = parse_juniper(generate_juniper(juniper)).config
        for candidate in ("20.0.0.0/6", "20.0.0.0/7", "20.0.0.0/8"):
            route = Route(prefix=Prefix.parse(candidate))
            original = source.route_maps["to_upstream"].evaluate(route, source)
            translated = rebuilt.route_maps["to_upstream"].evaluate(
                route, rebuilt
            )
            assert original.action is translated.action, candidate
