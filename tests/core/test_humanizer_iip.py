"""Tests for the humanizer and the IIP database."""

import pytest

from repro.core import (
    DEFAULT_IIP_IDS,
    Humanizer,
    IIPDatabase,
    InitialInstructionPrompt,
    finding_from_warning,
)
from repro.errors import ErrorCategory, Finding
from repro.netmodel.diagnostics import ParseWarning


class TestHumanizer:
    def _finding(self, category, message="something is off"):
        return Finding(category=category, message=message)

    def test_syntax_formula_from_warning(self):
        warning = ParseWarning(
            filename="x.conf",
            line=3,
            text="policy-options prefix-list our-networks 1.2.3.0/24-32",
            comment="There is a syntax error",
        )
        finding = finding_from_warning(warning)
        prompt = Humanizer().humanize(finding)
        assert prompt.startswith(
            "There is a syntax error: "
            "'policy-options prefix-list our-networks 1.2.3.0/24-32'"
        )
        assert "Print the entire corrected configuration." in prompt

    def test_syntax_without_warning_detail(self):
        prompt = Humanizer().humanize(self._finding(ErrorCategory.SYNTAX))
        assert "syntax error" in prompt

    def test_campion_findings_pass_through(self):
        for category in (
            ErrorCategory.STRUCTURAL,
            ErrorCategory.ATTRIBUTE,
            ErrorCategory.POLICY,
        ):
            prompt = Humanizer().humanize(self._finding(category, "X differs"))
            assert prompt.startswith("X differs")
            assert "fix the translation" in prompt

    def test_topology_formula(self):
        prompt = Humanizer().humanize(
            self._finding(ErrorCategory.TOPOLOGY, "Network 1.0.0.0/24 not declared")
        )
        assert "matches the given topology" in prompt

    def test_semantic_formula(self):
        prompt = Humanizer().humanize(
            self._finding(ErrorCategory.SEMANTIC, "route-map leaks.")
        )
        assert "local policy" in prompt

    def test_finding_from_warning_sets_router(self):
        warning = ParseWarning("f", 1, "text", "comment")
        finding = finding_from_warning(warning, router="R3")
        assert finding.router == "R3"
        assert finding.category is ErrorCategory.SYNTAX


class TestIIPDatabase:
    def test_builtin_iips_present(self):
        database = IIPDatabase()
        assert set(DEFAULT_IIP_IDS) <= set(database.ids())

    def test_four_paper_iips(self):
        assert len(DEFAULT_IIP_IDS) == 4

    def test_compose_preamble_contains_texts(self):
        preamble = IIPDatabase().compose_preamble(DEFAULT_IIP_IDS)
        assert "additive" in preamble
        assert "community list" in preamble
        assert "configure terminal" in preamble

    def test_compose_subset(self):
        preamble = IIPDatabase().compose_preamble(["additive-keyword"])
        assert "additive" in preamble
        assert "community list that contains" not in preamble

    def test_compose_empty(self):
        assert IIPDatabase().compose_preamble([]) == ""

    def test_unknown_iip_raises(self):
        with pytest.raises(KeyError):
            IIPDatabase().compose_preamble(["ghost"])

    def test_register_new_iip(self):
        """The database 'can be built and added by experts over time'."""
        database = IIPDatabase()
        database.register(
            InitialInstructionPrompt(
                iip_id="ipv6", title="No IPv6", text="Do not configure IPv6."
            )
        )
        assert "ipv6" in database.ids()
        assert "IPv6" in database.compose_preamble(["ipv6"])

    def test_empty_database(self):
        database = IIPDatabase(include_builtin=False)
        assert database.ids() == []
        assert database.get("no-cli-keywords") is None
