"""Tests for the shared error taxonomy and parse diagnostics."""

from repro.errors import ErrorCategory, Finding
from repro.netmodel.diagnostics import Diagnostics, ParseStatus, ParseWarning


class TestErrorCategory:
    def test_every_category_names_its_verifier(self):
        for category in ErrorCategory:
            assert category.verifier

    def test_syntax_belongs_to_batfish(self):
        assert ErrorCategory.SYNTAX.verifier == "batfish-parse"

    def test_campion_owns_three_classes(self):
        owned = [
            category
            for category in ErrorCategory
            if category.verifier == "campion"
        ]
        assert len(owned) == 3


class TestFinding:
    def test_describe_with_router(self):
        finding = Finding(
            category=ErrorCategory.TOPOLOGY, message="msg", router="R3"
        )
        assert finding.describe() == "[R3] topology: msg"

    def test_describe_without_router(self):
        finding = Finding(category=ErrorCategory.SYNTAX, message="msg")
        assert finding.describe() == "syntax: msg"

    def test_detail_carried(self):
        detail = object()
        finding = Finding(
            category=ErrorCategory.SEMANTIC, message="m", detail=detail
        )
        assert finding.detail is detail


class TestDiagnostics:
    def test_warn_accumulates(self):
        diagnostics = Diagnostics(filename="f.cfg")
        diagnostics.warn(3, " bad line ", "comment")
        (warning,) = diagnostics.warnings
        assert warning.line == 3
        assert warning.text == "bad line"  # stripped

    def test_status_transitions(self):
        diagnostics = Diagnostics()
        assert diagnostics.status is ParseStatus.PASSED
        diagnostics.warn(1, "x", "y")
        assert diagnostics.status is ParseStatus.PARTIALLY_UNRECOGNIZED

    def test_clear(self):
        diagnostics = Diagnostics()
        diagnostics.warn(1, "x", "y")
        diagnostics.clear()
        assert diagnostics.status is ParseStatus.PASSED

    def test_render_with_filename(self):
        warning = ParseWarning("r1.cfg", 7, "line", "oops")
        assert warning.render() == "[r1.cfg:7] oops: 'line'"

    def test_render_without_filename(self):
        warning = ParseWarning("", 7, "line", "oops")
        assert "line 7" in warning.render()
