"""The toggle registry: snapshot/apply/scoped restoration semantics."""

import pytest

from repro.batfish.bgpsim import (
    batched_evaluation_enabled,
    decision_cache_enabled,
    incremental_simulation_enabled,
    set_decision_cache,
)
from repro.core import toggles
from repro.netmodel.route import route_model
from repro.symbolic.memo import memoization_enabled


class TestSnapshot:
    def test_snapshot_covers_every_default(self):
        assert set(toggles.snapshot()) == set(toggles.DEFAULTS)

    def test_defaults_are_the_all_new_configuration(self):
        assert toggles.DEFAULTS == {
            "route_model": "v2",
            "decision_cache": True,
            "batched_evaluation": True,
            "incremental_simulation": True,
            "memoization": True,
            "worker_shipping": "coords",
        }

    def test_snapshot_reflects_live_state(self):
        set_decision_cache(False)
        try:
            assert toggles.snapshot()["decision_cache"] is False
        finally:
            set_decision_cache(True)


class TestApply:
    def test_apply_roundtrip(self):
        before = toggles.snapshot()
        toggles.apply({"route_model": "v1", "memoization": False})
        try:
            assert route_model() == "v1"
            assert not memoization_enabled()
        finally:
            toggles.apply(before)
        assert route_model() == "v2"
        assert memoization_enabled()

    def test_apply_rejects_unknown_names_before_touching_anything(self):
        before = toggles.snapshot()
        with pytest.raises(ValueError, match="unknown toggle"):
            toggles.apply({"route_model": "v1", "no_such_toggle": True})
        assert toggles.snapshot() == before

    def test_restore_defaults(self):
        toggles.apply({"decision_cache": False, "route_model": "v1"})
        toggles.restore_defaults()
        assert toggles.snapshot() == dict(toggles.DEFAULTS)


class TestScopes:
    def test_scoped_applies_and_restores(self):
        with toggles.scoped(incremental_simulation=False, route_model="v1"):
            assert not incremental_simulation_enabled()
            assert route_model() == "v1"
        assert incremental_simulation_enabled()
        assert route_model() == "v2"

    def test_scoped_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with toggles.scoped(batched_evaluation=False):
                assert not batched_evaluation_enabled()
                raise RuntimeError("boom")
        assert batched_evaluation_enabled()

    def test_preserved_restores_manual_flips(self):
        with toggles.preserved():
            set_decision_cache(False)
            assert not decision_cache_enabled()
        assert decision_cache_enabled()

    def test_deviations_names_the_leak(self):
        set_decision_cache(False)
        try:
            leaks = toggles.deviations()
        finally:
            set_decision_cache(True)
        assert leaks == [("decision_cache", False, True)]
        assert toggles.deviations() == []
