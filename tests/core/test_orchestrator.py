"""Tests for the VPP orchestrators."""

import math


from repro.core import (
    DEFAULT_IIP_IDS,
    LoopLimits,
    ScriptedHuman,
    SynthesisOrchestrator,
    TranslationOrchestrator,
)
from repro.core.leverage import PromptKind
from repro.llm import (
    BehaviorProfile,
    make_synthesis_models,
    make_translation_model,
    synthesis_fault_catalog,
    translation_fault_catalog,
)
from repro.sampleconfigs import load_translation_source


def _translation_run(seed=0, profile=None, limits=None, faults=None, human=True):
    source = load_translation_source()
    kwargs = {"seed": seed, "profile": profile}
    if faults is not None:
        kwargs["initial_faults"] = faults
    model = make_translation_model(**kwargs)
    agent = ScriptedHuman(translation_fault_catalog()) if human else None
    orchestrator = TranslationOrchestrator(
        source, model, human=agent, limits=limits
    )
    return orchestrator.run(), model


class TestTranslationOrchestrator:
    def test_full_run_verifies(self):
        result, _ = _translation_run()
        assert result.verified

    def test_clean_model_needs_no_corrections(self):
        result, _ = _translation_run(faults=())
        assert result.verified
        assert result.prompt_log.automated == 0
        assert result.prompt_log.human == 0
        assert math.isinf(result.prompt_log.leverage())

    def test_single_fixable_fault_one_prompt(self):
        result, _ = _translation_run(
            faults=("wrong_med",), profile=BehaviorProfile.always_fix()
        )
        assert result.verified
        assert result.prompt_log.automated == 1
        assert result.prompt_log.human == 0

    def test_unfixable_fault_punts_to_human(self):
        result, model = _translation_run(
            faults=("redistribution_unguarded",),
            profile=BehaviorProfile.always_fix(),
        )
        assert result.verified
        assert result.prompt_log.human == 1
        assert result.transcript.punts() == 1
        assert model.resolution_log == [("redistribution_unguarded", "human")]

    def test_never_fix_model_abandons(self):
        limits = LoopLimits(attempts_per_finding=2, max_correction_prompts=10)
        result, _ = _translation_run(
            faults=("wrong_med",),
            profile=BehaviorProfile.never_fix(),
            limits=limits,
            human=False,
        )
        assert not result.verified
        assert result.transcript.counts().get("abandoned") == 1

    def test_findings_seen_recorded(self):
        result, _ = _translation_run(
            faults=("wrong_med",), profile=BehaviorProfile.always_fix()
        )
        assert len(result.findings_seen) == 1

    def test_initial_prompt_logged(self):
        result, _ = _translation_run(faults=())
        kinds = [r.kind for r in result.prompt_log.records]
        assert kinds == [PromptKind.INITIAL]

    def test_syntax_handled_before_semantics(self):
        result, _ = _translation_run(
            faults=("wrong_med", "stray_statement"),
            profile=BehaviorProfile.always_fix(),
        )
        stages = [
            record.stage
            for record in result.prompt_log.records
            if record.kind is PromptKind.AUTOMATED
        ]
        assert stages == ["syntax", "policy"]


class TestSynthesisOrchestrator:
    def _run(self, star7, assignment=None, iips=DEFAULT_IIP_IDS, profile=None):
        models = make_synthesis_models(
            star7.topology, iip_ids=iips, seed=0, profile=profile,
            assignment=assignment,
        )
        human = ScriptedHuman(synthesis_fault_catalog(star7.topology))
        orchestrator = SynthesisOrchestrator(
            star7.topology, models, human=human, iip_ids=iips
        )
        return orchestrator.run(), models

    def test_full_run_verifies(self, star7):
        result, _ = self._run(star7)
        assert result.verified
        assert result.global_check.holds

    def test_owned_checker_gets_explicit_deltas_across_runs(self, star7):
        """With an owned checker, the loop hands the global check its
        own changed-router delta (compared on the final texts it
        already holds) instead of letting the checker fingerprint every
        config; a repeat run over unchanged texts re-simulates an empty
        delta incrementally."""
        from repro.lightyear.compose import IncrementalGlobalChecker

        checker = IncrementalGlobalChecker()
        models = make_synthesis_models(star7.topology, seed=0)
        human = ScriptedHuman(synthesis_fault_catalog(star7.topology))
        orchestrator = SynthesisOrchestrator(
            star7.topology, models, human=human,
            iip_ids=DEFAULT_IIP_IDS, global_checker=checker,
        )
        first = orchestrator.run()
        assert first.global_check.holds
        assert checker.last_stats.mode == "full"
        # fresh models, same seed -> byte-identical final texts
        orchestrator._models = make_synthesis_models(star7.topology, seed=0)
        second = orchestrator.run()
        assert second.global_check.holds
        assert checker.last_stats.incremental
        assert checker.last_stats.dirty_routers == 0
        assert checker._fingerprints is None  # never fingerprinted

    def test_clean_assignment_needs_no_corrections(self, star7):
        assignment = {name: [] for name in star7.topology.router_names()}
        result, _ = self._run(star7, assignment=assignment)
        assert result.verified
        assert result.prompt_log.automated == 0

    def test_router_texts_parse_as_final_configs(self, star7):
        from repro.cisco import parse_cisco

        result, _ = self._run(star7)
        assert set(result.router_texts) == set(star7.topology.router_names())
        for name, text in result.router_texts.items():
            assert not parse_cisco(text).warnings, name

    def test_initial_prompts_one_per_router(self, star7):
        result, _ = self._run(star7)
        assert result.prompt_log.initial == 7

    def test_iip_preamble_included(self, star7):
        result, models = self._run(star7)
        first_prompt = models["R1"].transcript.messages[0].content
        assert "Follow these instructions" in first_prompt
        assert "additive" in first_prompt

    def test_without_iips_more_syntax_prompts(self, star7):
        with_iips, _ = self._run(star7, profile=BehaviorProfile.always_fix())
        without_iips, _ = self._run(
            star7, iips=(), profile=BehaviorProfile.always_fix()
        )
        with_syntax = with_iips.prompt_log.by_stage().get("syntax", 0)
        without_syntax = without_iips.prompt_log.by_stage().get("syntax", 0)
        assert without_syntax > with_syntax
        assert without_iips.verified

    def test_two_human_prompts_on_default_run(self, star7):
        """The paper's synthesis cycle: exactly the AND/OR and misplaced-
        neighbor problems need the human (default seed)."""
        result, models = self._run(star7)
        assert result.prompt_log.human == 2
        human_fixes = [
            (key, how)
            for model in models.values()
            for key, how in model.resolution_log
            if how == "human"
        ]
        assert sorted(key for key, _ in human_fixes) == [
            "and_or_semantics",
            "misplaced_neighbor_command",
        ]
