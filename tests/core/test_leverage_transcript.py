"""Tests for leverage accounting and session transcripts."""

import math

from repro.core import PromptKind, PromptLog, SessionTranscript


class TestPromptLog:
    def test_counts_by_kind(self):
        log = PromptLog()
        log.add(PromptKind.INITIAL, "task", "do it")
        log.add(PromptKind.AUTOMATED, "syntax", "fix a")
        log.add(PromptKind.AUTOMATED, "policy", "fix b")
        log.add(PromptKind.HUMAN, "policy", "fix c")
        assert log.initial == 1
        assert log.automated == 2
        assert log.human == 1

    def test_leverage_is_auto_over_human(self):
        log = PromptLog()
        for _ in range(20):
            log.add(PromptKind.AUTOMATED, "s", "x")
        for _ in range(2):
            log.add(PromptKind.HUMAN, "s", "x")
        assert log.leverage() == 10.0

    def test_leverage_infinite_without_human(self):
        log = PromptLog()
        log.add(PromptKind.AUTOMATED, "s", "x")
        assert math.isinf(log.leverage())

    def test_initial_prompts_not_in_leverage(self):
        log = PromptLog()
        log.add(PromptKind.INITIAL, "task", "x")
        log.add(PromptKind.AUTOMATED, "s", "x")
        log.add(PromptKind.HUMAN, "s", "x")
        assert log.leverage() == 1.0

    def test_by_stage(self):
        log = PromptLog()
        log.add(PromptKind.AUTOMATED, "syntax", "a")
        log.add(PromptKind.AUTOMATED, "syntax", "b")
        log.add(PromptKind.HUMAN, "policy", "c")
        assert log.by_stage() == {"syntax": 2, "policy": 1}

    def test_by_router(self):
        log = PromptLog()
        log.add(PromptKind.AUTOMATED, "s", "a", router="R1")
        log.add(PromptKind.AUTOMATED, "s", "b", router="R1")
        log.add(PromptKind.AUTOMATED, "s", "c")
        assert log.by_router() == {"R1": 2, "-": 1}

    def test_summary_renders_leverage(self):
        log = PromptLog()
        log.add(PromptKind.AUTOMATED, "s", "x")
        log.add(PromptKind.HUMAN, "s", "y")
        assert "leverage 1.0X" in log.summary()

    def test_summary_inf(self):
        log = PromptLog()
        log.add(PromptKind.AUTOMATED, "s", "x")
        assert "leverage infX" in log.summary()


class TestSessionTranscript:
    def test_stage_sequence(self):
        transcript = SessionTranscript()
        transcript.record("verify", "syntax", "a")
        transcript.record("prompt", "syntax", "b")
        transcript.record("verify", "policy", "c")
        assert transcript.stage_sequence() == ["syntax", "policy"]

    def test_back_edges_counts_regressions_to_earlier_stage(self):
        """The Figure 3 back-edge: policy fix reintroduces a syntax error."""
        transcript = SessionTranscript()
        for stage in ("syntax", "structural", "policy", "syntax", "policy"):
            transcript.record("verify", stage, stage)
        assert transcript.back_edges() == 1

    def test_no_back_edges_in_monotone_run(self):
        transcript = SessionTranscript()
        for stage in ("syntax", "structural", "attribute", "policy"):
            transcript.record("verify", stage, stage)
        assert transcript.back_edges() == 0

    def test_punts_counted(self):
        transcript = SessionTranscript()
        transcript.record("punt", "policy", "stuck")
        transcript.record("punt", "semantic", "stuck")
        assert transcript.punts() == 2

    def test_counts(self):
        transcript = SessionTranscript()
        transcript.record("draft", "task", "x")
        transcript.record("verify", "syntax", "y")
        transcript.record("verify", "syntax", "z")
        assert transcript.counts() == {"draft": 1, "verify": 2}

    def test_router_attribution(self):
        transcript = SessionTranscript()
        event = transcript.record("verify", "topology", "x", router="R2")
        assert event.router == "R2"
