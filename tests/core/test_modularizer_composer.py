"""Tests for the Modularizer, Composer, and ScriptedHuman."""

from repro.core import Composer, Modularizer, ScriptedHuman
from repro.errors import ErrorCategory, Finding
from repro.lightyear import EgressFilterInvariant, IngressTagInvariant
from repro.llm import translation_fault_catalog


class TestModularizer:
    def test_router_prompt_mentions_interfaces(self, star7):
        prompt = Modularizer(star7.topology).router_task_prompt("R2")
        assert "Interface eth0/0 has address 1.0.0.2" in prompt
        assert "R2 only" in prompt

    def test_router_prompt_mentions_neighbors(self, star7):
        prompt = Modularizer(star7.topology).router_task_prompt("R2")
        assert "BGP neighbor 1.0.0.1 (R1) in AS 1" in prompt
        assert "ISP_2" in prompt

    def test_router_prompt_mentions_announcements(self, star7):
        prompt = Modularizer(star7.topology).router_task_prompt("R2")
        assert "1.0.0.0/24" in prompt
        assert "AS number 2" in prompt

    def test_hub_prompt_carries_local_policy(self, star7):
        prompt = Modularizer(star7.topology).router_task_prompt("R1")
        assert "add community 100:1" in prompt
        assert "additively" in prompt
        assert "deny any route that carries" in prompt

    def test_spoke_prompt_has_no_local_policy(self, star7):
        prompt = Modularizer(star7.topology).router_task_prompt("R4")
        assert "Local policy" not in prompt

    def test_global_prompt_describes_whole_network(self, star7):
        prompt = Modularizer(star7.topology).global_task_prompt()
        assert "all routers" in prompt
        assert "Router R1 is connected to Router R7" in prompt

    def test_local_invariants_sliced_by_router(self, star7):
        modularizer = Modularizer(star7.topology)
        all_invariants = modularizer.local_invariants()
        hub_invariants = modularizer.local_invariants("R1")
        assert len(all_invariants) == len(hub_invariants) == 12
        assert modularizer.local_invariants("R2") == []

    def test_invariant_types(self, star7):
        invariants = Modularizer(star7.topology).local_invariants("R1")
        assert any(isinstance(i, IngressTagInvariant) for i in invariants)
        assert any(isinstance(i, EgressFilterInvariant) for i in invariants)


class TestComposer:
    def test_compose_builds_snapshot(self):
        composer = Composer(name="t")
        composer.put("R1", "hostname R1\n")
        composer.put("R2", "hostname R2\n")
        snapshot = composer.compose()
        assert snapshot.hostnames() == ["R1", "R2"]
        assert composer.routers() == ["R1", "R2"]

    def test_put_replaces(self):
        composer = Composer()
        composer.put("R1", "hostname old\n")
        composer.put("R1", "hostname new\n")
        snapshot = composer.compose()
        assert snapshot.config_by_hostname("new") is not None

    def test_write_to_disk(self, tmp_path):
        composer = Composer()
        composer.put("R1", "hostname R1\n")
        directory = composer.write_to(tmp_path / "out")
        assert (directory / "R1.cfg").read_text() == "hostname R1\n"


class TestScriptedHuman:
    def test_matches_fault_human_prompt(self):
        human = ScriptedHuman(translation_fault_catalog())
        finding = Finding(
            category=ErrorCategory.POLICY,
            message="redistribution difference",
        )
        response = human.respond(
            finding, "the BGP redistribution (connected) policy differs"
        )
        assert "from protocol" in response or "from bgp" in response

    def test_generic_fallback_counts_as_human(self):
        human = ScriptedHuman({})
        finding = Finding(
            category=ErrorCategory.SYNTAX, message="mystery problem"
        )
        response = human.respond(finding, "unintelligible verifier output")
        assert "mystery problem" in response
        assert len(human.responses) == 1
