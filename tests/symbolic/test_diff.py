"""Tests for behavioural policy comparison (the Campion core)."""

import copy


from repro.netmodel import (
    Action,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixRange,
    Protocol,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    SetMed,
)
from repro.symbolic import (
    DifferenceKind,
    RouteConstraint,
    compare_policies,
)


def _policy_pair():
    """Original permits 1.2.3.0/24 ge 24 with MED 50; copy is identical."""
    config = RouterConfig(hostname="a")
    plist = PrefixList("nets")
    plist.add("permit", PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32))
    config.add_prefix_list(plist)
    rm = RouteMap("to_provider")
    clause = RouteMapClause(seq=10, action=Action.PERMIT)
    clause.matches.append(MatchPrefixList("nets"))
    clause.sets.append(SetMed(50))
    rm.add_clause(clause)
    config.add_route_map(rm)
    other = copy.deepcopy(config)
    return config, rm, other, other.get_route_map("to_provider")


class TestComparePolicies:
    def test_identical_policies_have_no_differences(self):
        config, rm, other, other_rm = _policy_pair()
        assert compare_policies(config, rm, other, other_rm) == []

    def test_dropped_ge_found_at_longer_prefix(self):
        """The paper's prefix-length bug: translation matches only the
        exact /24, so a /25 shows the disposition difference."""
        config, rm, other, other_rm = _policy_pair()
        other.prefix_lists["nets"].entries[0] = (
            other.prefix_lists["nets"].entries[0].__class__(
                seq=5,
                action="permit",
                range=PrefixRange.exact(Prefix.parse("1.2.3.0/24")),
            )
        )
        differences = compare_policies(config, rm, other, other_rm)
        assert differences
        disposition = [
            d for d in differences if d.kind is DifferenceKind.DISPOSITION
        ]
        assert disposition
        witness = disposition[0]
        assert witness.route.prefix.length > 24
        assert witness.original_action is Action.PERMIT
        assert witness.translated_action is Action.DENY

    def test_med_difference_reported_as_transform(self):
        config, rm, other, other_rm = _policy_pair()
        other_rm.clauses[0].sets = []
        differences = compare_policies(config, rm, other, other_rm)
        transforms = [
            d
            for d in differences
            if d.kind is DifferenceKind.ATTRIBUTE_TRANSFORM
        ]
        assert transforms
        assert "MED" in transforms[0].detail

    def test_constraint_restricts_space(self):
        config, rm, other, other_rm = _policy_pair()
        # Break the translation only for OSPF routes...
        guard = RouteMapClause(seq=5, action=Action.DENY)
        from repro.netmodel import MatchProtocol

        guard.matches.append(MatchProtocol(Protocol.OSPF))
        other_rm.add_clause(guard)
        # ...then compare only over the BGP space: no difference visible.
        constraint = RouteConstraint(protocol=Protocol.BGP)
        assert compare_policies(
            config, rm, other, other_rm, constraint=constraint
        ) == []
        # Unconstrained, the difference appears.
        assert compare_policies(config, rm, other, other_rm)

    def test_limit_respected(self):
        config, rm, other, other_rm = _policy_pair()
        other_rm.clauses = []  # denies everything
        differences = compare_policies(config, rm, other, other_rm, limit=2)
        assert len(differences) <= 2

    def test_describe_disposition(self):
        config, rm, other, other_rm = _policy_pair()
        other_rm.clauses = []
        (difference, *_rest) = compare_policies(
            config, rm, other, other_rm, limit=1
        )
        text = difference.describe()
        assert "ACCEPT" in text or "accept" in text.lower()

    def test_unresolvable_translation_reported(self):
        config, rm, other, other_rm = _policy_pair()
        other.prefix_lists = {}
        differences = compare_policies(config, rm, other, other_rm)
        assert differences
        assert "failed to evaluate" in differences[0].detail
