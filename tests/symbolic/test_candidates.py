"""Tests for the structured candidate grid."""

from repro.netmodel import (
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    MatchCommunityList,
    MatchPrefixList,
    MatchPrefixRanges,
    MatchProtocol,
    Prefix,
    PrefixList,
    PrefixRange,
    Protocol,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    SetCommunity,
)
from repro.symbolic import (
    CandidateUniverse,
    RouteConstraint,
    mentioned_communities,
    mentioned_prefix_ranges,
    mentioned_protocols,
)


def _config_with_policy():
    config = RouterConfig(hostname="r")
    plist = PrefixList("nets")
    plist.add("permit", PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32))
    config.add_prefix_list(plist)
    clist = CommunityList("tags")
    clist.add(CommunityListEntry("permit", (Community(100, 1),)))
    config.add_community_list(clist)
    rm = RouteMap("m")
    deny = RouteMapClause(seq=10, action=Action.DENY)
    deny.matches.append(MatchCommunityList("tags"))
    rm.add_clause(deny)
    permit = RouteMapClause(seq=20, action=Action.PERMIT)
    permit.matches.append(MatchPrefixList("nets"))
    permit.matches.append(MatchProtocol(Protocol.BGP))
    permit.sets.append(SetCommunity((Community(200, 2),), additive=True))
    rm.add_clause(permit)
    config.add_route_map(rm)
    return config, rm


class TestMentioned:
    def test_prefix_ranges_resolved_through_lists(self):
        config, rm = _config_with_policy()
        ranges = mentioned_prefix_ranges(config, rm)
        assert PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32) in ranges

    def test_inline_ranges_collected(self):
        config = RouterConfig(hostname="r")
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        target = PrefixRange.exact(Prefix.parse("9.9.9.0/24"))
        clause.matches.append(MatchPrefixRanges((target,)))
        rm.add_clause(clause)
        assert mentioned_prefix_ranges(config, rm) == [target]

    def test_communities_from_matches_and_sets(self):
        config, rm = _config_with_policy()
        communities = mentioned_communities(config, rm)
        assert Community(100, 1) in communities
        assert Community(200, 2) in communities

    def test_protocols(self):
        config, rm = _config_with_policy()
        assert mentioned_protocols(rm) == [Protocol.BGP]

    def test_undefined_list_tolerated(self):
        config = RouterConfig(hostname="r")
        rm = RouteMap("m")
        clause = RouteMapClause(seq=10, action=Action.PERMIT)
        clause.matches.append(MatchPrefixList("ghost"))
        rm.add_clause(clause)
        assert mentioned_prefix_ranges(config, rm) == []


class TestCandidateUniverse:
    def test_grid_covers_boundary_lengths(self):
        config, rm = _config_with_policy()
        universe = CandidateUniverse()
        universe.add_policy(config, rm)
        prefixes = universe.candidate_prefixes()
        lengths = {p.length for p in prefixes if str(p).startswith("1.2.3")}
        # low (24), low+1 (25), midpoint (28), high (32) all present.
        assert {24, 25, 28, 32} <= lengths

    def test_grid_includes_outside_prefix(self):
        universe = CandidateUniverse()
        assert Prefix.parse("203.0.113.0/24") in universe.candidate_prefixes()

    def test_community_subsets(self):
        config, rm = _config_with_policy()
        universe = CandidateUniverse()
        universe.add_policy(config, rm)
        sets = universe.candidate_community_sets()
        assert frozenset() in sets
        assert frozenset({Community(100, 1)}) in sets
        assert frozenset({Community(100, 1), Community(200, 2)}) in sets

    def test_protocols_include_defaults(self):
        universe = CandidateUniverse()
        protocols = universe.candidate_protocols()
        assert Protocol.BGP in protocols
        assert Protocol.OSPF in protocols

    def test_constraint_filtering(self):
        config, rm = _config_with_policy()
        universe = CandidateUniverse()
        universe.add_policy(config, rm)
        constraint = RouteConstraint.with_community(Community(100, 1))
        routes = list(universe.routes(constraint))
        assert routes
        assert all(Community(100, 1) in r.communities for r in routes)

    def test_add_constraint_enriches_grid(self):
        universe = CandidateUniverse()
        constraint = RouteConstraint(
            prefix_ranges=(PrefixRange.exact(Prefix.parse("7.7.7.0/24")),)
        )
        universe.add_constraint(constraint)
        assert Prefix.parse("7.7.7.0/24") in universe.candidate_prefixes()

    def test_size_estimate_matches_iteration(self):
        config, rm = _config_with_policy()
        universe = CandidateUniverse()
        universe.add_policy(config, rm)
        assert universe.size_estimate() == len(list(universe.routes()))
