"""Tests for search_route_policies (the SearchRoutePolicies substitute)."""

import pytest

from repro.netmodel import (
    Action,
    Community,
    CommunityList,
    CommunityListEntry,
    MatchCommunityList,
    MatchPrefixList,
    Prefix,
    PrefixList,
    PrefixRange,
    RouteMap,
    RouteMapClause,
    RouterConfig,
)
from repro.symbolic import (
    RouteConstraint,
    policy_always,
    search_route_policies,
)


@pytest.fixture()
def config():
    cfg = RouterConfig(hostname="r")
    plist = PrefixList("nets")
    plist.add("permit", PrefixRange(Prefix.parse("1.2.3.0/24"), 24, 32))
    cfg.add_prefix_list(plist)
    clist = CommunityList("tag100")
    clist.add(CommunityListEntry("permit", (Community(100, 1),)))
    cfg.add_community_list(clist)
    rm = RouteMap("filter")
    deny = RouteMapClause(seq=10, action=Action.DENY)
    deny.matches.append(MatchCommunityList("tag100"))
    rm.add_clause(deny)
    permit = RouteMapClause(seq=20, action=Action.PERMIT)
    permit.matches.append(MatchPrefixList("nets"))
    rm.add_clause(permit)
    cfg.add_route_map(rm)
    return cfg


class TestSearch:
    def test_finds_permitted_route(self, config):
        results = search_route_policies(config, "filter", Action.PERMIT)
        assert results
        witness = results[0]
        assert witness.action is Action.PERMIT
        assert Prefix.parse("1.2.3.0/24").contains(witness.input_route.prefix)

    def test_finds_denied_route(self, config):
        results = search_route_policies(config, "filter", Action.DENY)
        assert results

    def test_respects_constraint(self, config):
        """The paper's §4 question: does the filter permit any route
        carrying the forbidden community?"""
        constraint = RouteConstraint.with_community(Community(100, 1))
        results = search_route_policies(
            config, "filter", Action.PERMIT, constraint=constraint
        )
        assert results == []  # the deny clause catches them all

    def test_violation_found_when_filter_broken(self, config):
        broken = config.get_route_map("filter")
        broken.clauses = [c for c in broken.clauses if c.action is Action.PERMIT]
        constraint = RouteConstraint.with_community(Community(100, 1))
        results = search_route_policies(
            config, "filter", Action.PERMIT, constraint=constraint
        )
        assert results
        assert Community(100, 1) in results[0].input_route.communities

    def test_limit_respected(self, config):
        results = search_route_policies(
            config, "filter", Action.DENY, limit=2
        )
        assert len(results) <= 2

    def test_unknown_policy_raises(self, config):
        with pytest.raises(KeyError):
            search_route_policies(config, "ghost", Action.PERMIT)

    def test_accepts_route_map_object(self, config):
        rm = config.get_route_map("filter")
        assert search_route_policies(config, rm, Action.PERMIT)

    def test_output_route_carries_transforms(self, config):
        results = search_route_policies(config, "filter", Action.PERMIT)
        assert results[0].output_route is not None

    def test_describe(self, config):
        results = search_route_policies(config, "filter", Action.DENY, limit=1)
        assert "denies" in results[0].describe()


class TestPolicyAlways:
    def test_holds(self, config):
        constraint = RouteConstraint.with_community(Community(100, 1))
        assert policy_always(config, "filter", Action.DENY, constraint) is None

    def test_counterexample(self, config):
        counterexample = policy_always(config, "filter", Action.PERMIT)
        assert counterexample is not None
        assert counterexample.action is Action.DENY
