"""CandidateUniverse memoization: accounting, and cached == uncached.

The caches may only ever change *speed* — every verdict must be
identical with memoization on, off, or warm, on every topology family.
"""

import pytest

from repro.lightyear import no_transit_invariants, verify_invariants
from repro.lightyear.verifier import _VERDICT_CACHE
from repro.llm import synthesis_fault_catalog, fault_designations
from repro.llm.faults import DraftState
from repro.cisco import generate_cisco, parse_cisco
from repro.symbolic import (
    CandidateUniverse,
    cache_stats,
    cache_totals,
    canonical_route_map_key,
    memoization_enabled,
    reset_caches,
    set_memoization,
)
from repro.symbolic.candidates import _POLICY_CACHE, _ROUTES_CACHE
from repro.topology.families import generate_network
from repro.topology.reference import build_reference_configs

FAMILIES = ["star", "chain", "ring", "mesh", "dumbbell"]


@pytest.fixture(autouse=True)
def clean_caches():
    reset_caches()
    yield
    set_memoization(True)
    reset_caches()


def _policy(family="chain", size=5, router="R2"):
    """R2's egress filter: matches community lists, so its canonical
    key must resolve list contents through the config."""
    topology = generate_network(family, size).topology
    config = build_reference_configs(topology)[router]
    name = next(
        name for name in sorted(config.route_maps)
        if name.startswith("FILTER_COMM_OUT")
    )
    return config, config.route_maps[name]


class TestCanonicalKey:
    def test_same_structure_same_key(self):
        config_a, map_a = _policy()
        config_b, map_b = _policy()
        assert canonical_route_map_key(config_a, map_a) == (
            canonical_route_map_key(config_b, map_b)
        )

    def test_structural_change_changes_key(self):
        config, route_map = _policy()
        before = canonical_route_map_key(config, route_map)
        route_map.clauses[0].seq += 1
        assert canonical_route_map_key(config, route_map) != before

    def test_referenced_list_contents_are_part_of_the_key(self):
        config, route_map = _policy()
        before = canonical_route_map_key(config, route_map)
        for community_list in config.community_lists.values():
            community_list.entries.clear()
        assert canonical_route_map_key(config, route_map) != before


class TestAccounting:
    def test_policy_cache_hits_on_repeat(self):
        config, route_map = _policy()
        CandidateUniverse.for_policy(config, route_map)
        assert (_POLICY_CACHE.hits, _POLICY_CACHE.misses) == (0, 1)
        CandidateUniverse.for_policy(config, route_map)
        assert (_POLICY_CACHE.hits, _POLICY_CACHE.misses) == (1, 1)

    def test_routes_cache_hits_on_repeat(self):
        config, route_map = _policy()
        universe = CandidateUniverse.for_policy(config, route_map)
        first = universe.cached_routes()
        again = CandidateUniverse.for_policy(config, route_map).cached_routes()
        assert first == again
        assert _ROUTES_CACHE.hits == 1 and _ROUTES_CACHE.misses == 1

    def test_verify_invariants_hits_verdict_cache_on_second_pass(self):
        topology = generate_network("mesh", 5).topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        first = verify_invariants(configs, invariants)
        misses_after_first = _VERDICT_CACHE.misses
        second = verify_invariants(configs, invariants)
        assert second == first == []
        assert _VERDICT_CACHE.misses == misses_after_first
        assert _VERDICT_CACHE.hits >= len(invariants)

    def test_cache_stats_reports_registered_caches(self):
        stats = cache_stats()
        assert {"universe-policy", "universe-routes", "invariant-verdict"} <= (
            set(stats)
        )
        for entry in stats.values():
            assert {"hits", "misses", "entries"} <= set(entry)

    def test_cache_totals_sums_hits_and_misses(self):
        config, route_map = _policy()
        CandidateUniverse.for_policy(config, route_map)
        CandidateUniverse.for_policy(config, route_map)
        hits, misses = cache_totals()
        assert hits >= 1 and misses >= 1

    def test_disabled_memoization_never_hits(self):
        set_memoization(False)
        assert not memoization_enabled()
        config, route_map = _policy()
        CandidateUniverse.for_policy(config, route_map)
        CandidateUniverse.for_policy(config, route_map)
        assert _POLICY_CACHE.hits == 0
        assert len(_POLICY_CACHE) == 0


class TestCachedEqualsUncached:
    """Regression: memoized and unmemoized checks agree on every family."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_reference_configs_verify_identically(self, family):
        topology = generate_network(family, 5).topology
        configs = build_reference_configs(topology)
        invariants = no_transit_invariants(topology)
        set_memoization(False)
        uncached = verify_invariants(configs, invariants)
        set_memoization(True)
        cold = verify_invariants(configs, invariants)
        warm = verify_invariants(configs, invariants)
        assert uncached == cold == warm == []

    @pytest.mark.parametrize("family", FAMILIES)
    def test_faulted_configs_verify_identically(self, family):
        topology = generate_network(family, 5).topology
        catalog = synthesis_fault_catalog(topology)
        router = fault_designations(topology)["egress_permits_tagged"]
        references = build_reference_configs(topology)
        draft = DraftState(references[router], generate_cisco)
        draft.inject(catalog["egress_permits_tagged"])
        faulted = parse_cisco(draft.render()).config
        configs = dict(references)
        configs[router] = faulted
        invariants = no_transit_invariants(topology)
        set_memoization(False)
        uncached = verify_invariants(configs, invariants)
        set_memoization(True)
        cached = verify_invariants(configs, invariants)
        warm = verify_invariants(configs, invariants)
        assert uncached, "the injected fault must violate an invariant"
        assert uncached == cached == warm
        assert any(router == violation.router for violation in uncached)
