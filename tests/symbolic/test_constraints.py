"""Tests for route constraints (the question input space)."""

from repro.netmodel import Community, Prefix, PrefixRange, Protocol, Route
from repro.symbolic import RouteConstraint


def _route(**kwargs):
    return Route(prefix=Prefix.parse("1.2.3.0/24"), **kwargs)


class TestRouteConstraint:
    def test_any_route_admits_everything(self):
        assert RouteConstraint.any_route().admits(_route())

    def test_prefix_ranges_disjunctive(self):
        constraint = RouteConstraint(
            prefix_ranges=(
                PrefixRange.exact(Prefix.parse("1.2.3.0/24")),
                PrefixRange.exact(Prefix.parse("9.9.9.0/24")),
            )
        )
        assert constraint.admits(_route())
        assert constraint.admits(Route(prefix=Prefix.parse("9.9.9.0/24")))
        assert not constraint.admits(Route(prefix=Prefix.parse("8.8.8.0/24")))

    def test_with_community(self):
        constraint = RouteConstraint.with_community(Community(100, 1))
        assert constraint.admits(
            _route(communities=frozenset({Community(100, 1)}))
        )
        assert not constraint.admits(_route())

    def test_required_communities_conjunctive(self):
        constraint = RouteConstraint(
            required_communities=frozenset({Community(1, 1), Community(2, 2)})
        )
        assert not constraint.admits(
            _route(communities=frozenset({Community(1, 1)}))
        )
        assert constraint.admits(
            _route(communities=frozenset({Community(1, 1), Community(2, 2)}))
        )

    def test_without_community(self):
        constraint = RouteConstraint.without_community(Community(100, 1))
        assert constraint.admits(_route())
        assert not constraint.admits(
            _route(communities=frozenset({Community(100, 1)}))
        )

    def test_protocol(self):
        constraint = RouteConstraint(protocol=Protocol.OSPF)
        assert constraint.admits(_route(protocol=Protocol.OSPF))
        assert not constraint.admits(_route())

    def test_conjunction_across_fields(self):
        constraint = RouteConstraint(
            prefix_ranges=(PrefixRange.exact(Prefix.parse("1.2.3.0/24")),),
            required_communities=frozenset({Community(1, 1)}),
            protocol=Protocol.BGP,
        )
        good = _route(communities=frozenset({Community(1, 1)}))
        assert constraint.admits(good)
        assert not constraint.admits(good.with_protocol(Protocol.OSPF))

    def test_describe_any(self):
        assert RouteConstraint.any_route().describe() == "any route"

    def test_describe_mentions_fields(self):
        constraint = RouteConstraint(
            required_communities=frozenset({Community(100, 1)}),
            protocol=Protocol.BGP,
        )
        text = constraint.describe()
        assert "100:1" in text
        assert "bgp" in text
